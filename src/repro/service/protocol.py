"""Wire schema and validation for the sweep service.

One endpoint does the work — ``POST /sweep`` with a JSON body::

    {
      "workloads":  ["x264", "gcc"],          # required, registered names
      "schemes":    ["lru", "acic"],          # required, registered names
      "records":    20000,                     # optional, server default
      "prefetcher": "fdp",                     # optional: fdp|entangling|none
      "machine":    {"fetch_width": 8},        # optional flat MachineParams
                                               #   overrides (no "hierarchy")
      "stream":     false                      # optional: chunked progress
    }

A non-streaming response is one JSON object::

    {"results": {"x264::lru": {<scalars>}, ...},
     "sources": {"x264::lru": "warm"|"inflight"|"simulated", ...},
     "stats":   {<service counters>}}

A streaming response (``"stream": true``) is chunked
``application/x-ndjson`` — one JSON object per line, results in
completion order so clients see cold-pair progress as it happens::

    {"event": "result", "workload": "x264", "scheme": "lru",
     "source": "simulated", "scalars": {...}}
    {"event": "done", "pairs": 4, "stats": {...}}

(an ``{"event": "error", "error": "..."}`` line terminates a stream
that failed mid-flight).  With sharded execution active on the server
(``REPRO_SHARD_WINDOW``), streams additionally carry one progress line
per completed shard window of each admitted pair::

    {"event": "shard", "workload": "x264", "scheme": "lru",
     "shard": 3, "records_done": 60000, "records_total": 100000}

A server that is *draining* (SIGTERM received; in-flight shards running
to their next ledgered boundary) refuses every new ``/sweep`` with 503
— clients retry against the restarted server, which resumes from the
persisted shard ledgers (see :mod:`repro.harness.shards`).  The scalar
fields are exactly the runner's
disk-cache schema (:data:`repro.harness.runner._SCALAR_FIELDS`), so a
served result is bit-identical to what ``Runner.sweep`` returns.

Validation is the service's first admission gate: unknown workloads,
schemes, prefetchers, machine fields or top-level keys are rejected
with :class:`ProtocolError` (HTTP 400) *before* any simulation or
queueing happens — a malformed request must never cost a trace build.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields as dataclass_fields, replace
from typing import Dict, List, Optional, Tuple

from repro.harness.experiment import PREFETCHERS
from repro.harness.runner import _SCALAR_FIELDS
from repro.harness.schemes import available_schemes
from repro.uarch.params import DEFAULT_MACHINE, MachineParams
from repro.uarch.timing import RunResult
from repro.workloads.profiles import known_workload_names

#: Maximum request body the server will read (64 KiB is ~3000 pairs —
#: far beyond any sane grid; anything larger is rejected up front).
MAX_BODY_BYTES = 64 * 1024

#: Top-level request keys the schema knows.
_ALLOWED_KEYS = frozenset(
    {"workloads", "schemes", "records", "prefetcher", "machine", "stream"}
)

#: MachineParams fields a request may override: every flat scalar knob.
#: ``hierarchy`` is a nested config — overriding it over the wire would
#: need its own schema; pin the default until a request needs it.
_MACHINE_FIELDS = frozenset(
    f.name for f in dataclass_fields(MachineParams) if f.name != "hierarchy"
)


class ProtocolError(ValueError):
    """An invalid sweep request; the server answers HTTP 400."""


@dataclass(frozen=True)
class SweepRequest:
    """A validated sweep request."""

    workloads: Tuple[str, ...]
    schemes: Tuple[str, ...]
    records: Optional[int]
    prefetcher: str
    machine: MachineParams
    stream: bool

    def pairs(self) -> List[Tuple[str, str]]:
        """The request's unique (workload, scheme) pairs, grid order."""
        return list(
            dict.fromkeys(
                (w, s) for w in self.workloads for s in self.schemes
            )
        )


def _names(payload: Dict[str, object], key: str, known, kind: str) -> Tuple[str, ...]:
    value = payload.get(key)
    if (
        not isinstance(value, list)
        or not value
        or not all(isinstance(item, str) for item in value)
    ):
        raise ProtocolError(f"{key!r} must be a non-empty list of strings")
    for name in value:
        if name not in known:
            raise ProtocolError(
                f"unknown {kind} {name!r}; known: {', '.join(sorted(known))}"
            )
    return tuple(value)


def _machine(payload: Dict[str, object]) -> MachineParams:
    overrides = payload.get("machine")
    if overrides is None:
        return DEFAULT_MACHINE
    if not isinstance(overrides, dict):
        raise ProtocolError("'machine' must be an object of field overrides")
    unknown = set(overrides) - _MACHINE_FIELDS
    if unknown:
        raise ProtocolError(
            f"unknown machine field(s) {sorted(unknown)}; "
            f"known: {sorted(_MACHINE_FIELDS)}"
        )
    for name, value in overrides.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ProtocolError(f"machine field {name!r} must be a number")
    try:
        return replace(DEFAULT_MACHINE, **overrides)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid machine parameters: {exc}") from exc


def parse_sweep_request(raw: bytes) -> SweepRequest:
    """Validate a ``POST /sweep`` body into a :class:`SweepRequest`."""
    if len(raw) > MAX_BODY_BYTES:
        raise ProtocolError(
            f"request body exceeds {MAX_BODY_BYTES} bytes"
        )
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("body must be a JSON object")
    unknown = set(payload) - _ALLOWED_KEYS
    if unknown:
        raise ProtocolError(
            f"unknown request key(s) {sorted(unknown)}; "
            f"known: {sorted(_ALLOWED_KEYS)}"
        )

    # known_workload_names() includes the committed search discoveries
    # (profiles/found/), so clients can sweep them like any calibrated
    # workload.
    workloads = _names(payload, "workloads", known_workload_names(), "workload")
    schemes = _names(payload, "schemes", available_schemes(), "scheme")

    records = payload.get("records")
    if records is not None:
        if isinstance(records, bool) or not isinstance(records, int):
            raise ProtocolError("'records' must be an integer")
        if records < 1000:
            raise ProtocolError(
                f"'records' must be >= 1000 (warmup needs a prefix), "
                f"got {records}"
            )

    prefetcher = payload.get("prefetcher", "fdp")
    if prefetcher not in PREFETCHERS:
        raise ProtocolError(
            f"unknown prefetcher {prefetcher!r}; known: {PREFETCHERS}"
        )

    stream = payload.get("stream", False)
    if not isinstance(stream, bool):
        raise ProtocolError("'stream' must be a boolean")

    return SweepRequest(
        workloads=workloads,
        schemes=schemes,
        records=records,
        prefetcher=prefetcher,
        machine=_machine(payload),
        stream=stream,
    )


def pair_token(workload: str, scheme: str) -> str:
    """The ``workload::scheme`` key results are reported under."""
    return f"{workload}::{scheme}"


def scalars_of(result: RunResult) -> Dict[str, object]:
    """A result's scalar measurements, in the disk-cache schema."""
    return {name: getattr(result, name) for name in _SCALAR_FIELDS}


def result_event(
    workload: str, scheme: str, source: str, result: RunResult
) -> Dict[str, object]:
    """One streamed progress line for a completed pair."""
    return {
        "event": "result",
        "workload": workload,
        "scheme": scheme,
        "source": source,
        "scalars": scalars_of(result),
    }


def shard_event(
    workload: str,
    scheme: str,
    shard: int,
    records_done: int,
    records_total: int,
) -> Dict[str, object]:
    """One streamed progress line for a completed shard window."""
    return {
        "event": "shard",
        "workload": workload,
        "scheme": scheme,
        "shard": shard,
        "records_done": records_done,
        "records_total": records_total,
    }


def encode_jsonl(obj: Dict[str, object]) -> bytes:
    """One newline-terminated JSON line of the streaming response."""
    return (json.dumps(obj) + "\n").encode()
