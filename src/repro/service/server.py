"""The sweep service: a long-lived asyncio HTTP simulation server.

Request handling is a thin, single-threaded asyncio loop; simulation is
not.  A ``POST /sweep`` request is partitioned by the admission table
(:mod:`repro.service.admission`) into warm pairs (served straight out
of the runner's fingerprinted result cache), in-flight pairs (joined to
the future some concurrent request already owns) and admitted pairs —
only the last are queued, through ``Runner.sweep_pairs`` running in a
small thread pool gated by a semaphore (``REPRO_SERVICE_CONCURRENCY``
sweeps at a time; each sweep may itself fan out across ``jobs`` worker
processes).  A request whose cold work would exceed ``max_queue``
pending sweeps is refused with 503 before any simulation starts — the
admission-control analogue of ACIC bypassing a line the predictor says
is not worth caching.

Endpoints::

    POST /sweep      run (or fetch) a grid; see repro.service.protocol
    GET  /healthz    liveness + admission counters + queue depth
    GET  /schemes    registered scheme names -> descriptions
    GET  /workloads  registered workload names

The server speaks minimal HTTP/1.1 over asyncio streams (stdlib only,
one connection per request, ``Connection: close``).  Streaming
responses use chunked transfer encoding, one JSON line per completed
pair, so clients watch cold grids fill in pair by pair.

:class:`ServiceThread` hosts a service on a background thread for
tests, benches and :mod:`scripts.bench_service`;
``scripts/serve_sweeps.py`` is the foreground entrypoint.
"""

from __future__ import annotations

import asyncio
import json
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from threading import Event as ThreadEvent, Thread
from typing import Dict, List, Optional, Tuple

from repro.harness.experiment import scaled_records
from repro.harness.runner import Runner
from repro.harness.schemes import available_schemes
from repro.service.admission import Admission, Pair
from repro.service.protocol import (
    MAX_BODY_BYTES,
    ProtocolError,
    encode_jsonl,
    pair_token,
    parse_sweep_request,
    result_event,
    scalars_of,
)
from repro.uarch.params import MachineParams
from repro.uarch.timing import RunResult
from repro.workloads.profiles import ALL_WORKLOADS

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _service_concurrency() -> int:
    """Concurrent ``Runner.sweep_pairs`` calls (REPRO_SERVICE_CONCURRENCY).

    Each slot is one sweeping thread (which may itself drive ``jobs``
    worker processes); two slots let a short request overtake a long
    one without oversubscribing the machine by default.
    """
    env = os.environ.get("REPRO_SERVICE_CONCURRENCY", "").strip()
    if not env:
        return 2
    slots = int(env)
    if slots < 1:
        raise ValueError(
            f"REPRO_SERVICE_CONCURRENCY must be >= 1, got {slots}"
        )
    return slots


@dataclass
class ServiceConfig:
    """Server-side knobs (requests may narrow, never widen, them)."""

    #: Default trace length for requests that omit ``records``
    #: (None = the harness default, honouring ``REPRO_SCALE``).
    records: Optional[int] = None
    #: Worker processes per cold sweep (``Runner.sweep_pairs(jobs=)``).
    jobs: int = 1
    #: Concurrent sweeps; None = ``REPRO_SERVICE_CONCURRENCY`` (or 2).
    max_concurrent_sweeps: Optional[int] = None
    #: Cold sweeps allowed in flight/queued before requests that would
    #: add more are refused with 503 (warm/joined requests always pass).
    max_queue: int = 8

    def concurrency(self) -> int:
        return self.max_concurrent_sweeps or _service_concurrency()


class _HttpError(Exception):
    """Request-level failure carrying its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class SweepService:
    """One service instance: admission table, runner pool, sim slots."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.admission = Admission()
        slots = self.config.concurrency()
        self._sim_slots = asyncio.Semaphore(slots)
        self._sim_pool = ThreadPoolExecutor(
            max_workers=slots, thread_name_prefix="sweep-sim"
        )
        #: Cold sweeps scheduled and not yet finished (the 503 gate).
        self._cold_sweeps = 0
        #: One Runner per distinct (records, prefetcher, machine)
        #: configuration, shared across requests so the in-memory
        #: result cache and the context LRU are server-wide.  Only the
        #: event-loop thread mutates this dict.
        self._runners: Dict[Tuple[int, str, str], Runner] = {}

    def close(self) -> None:
        self._sim_pool.shutdown(wait=False, cancel_futures=True)

    # -- runner pool --------------------------------------------------------

    def _runner_for(
        self, records: int, prefetcher: str, machine: MachineParams
    ) -> Runner:
        key = (records, prefetcher, machine.fingerprint())
        runner = self._runners.get(key)
        if runner is None:
            runner = Runner(
                records=records, prefetcher=prefetcher, machine=machine
            )
            self._runners[key] = runner
        return runner

    # -- simulation ---------------------------------------------------------

    async def _simulate(self, runner: Runner, admitted: List[Pair]) -> None:
        """Queue one request's admitted pairs through ``sweep_pairs``.

        Runs in a sim-pool thread behind the concurrency semaphore.
        Per-pair completions resolve the in-flight futures as they land
        (threadsafe hop back onto the loop); pairs the sweep satisfied
        from a cache layer instead of ``on_result`` are resolved from
        the returned map, and a crashed sweep fails every still-pending
        future so joined requests get an error, not a hung connection.
        """
        loop = asyncio.get_running_loop()

        def on_result(workload: str, scheme: str, result: RunResult) -> None:
            loop.call_soon_threadsafe(
                self.admission.resolve, runner, workload, scheme, result
            )

        try:
            async with self._sim_slots:
                results = await loop.run_in_executor(
                    self._sim_pool,
                    lambda: runner.sweep_pairs(
                        admitted, jobs=self.config.jobs, on_result=on_result
                    ),
                )
            for pair in admitted:
                self.admission.resolve(runner, *pair, results[pair])
        except Exception as exc:
            self.admission.stats.errors += 1
            self.admission.fail(runner, admitted, exc)
        finally:
            self._cold_sweeps -= 1

    # -- request handling ---------------------------------------------------

    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: read a request, route it, close."""
        try:
            parsed = await self._read_request(reader)
            if parsed is not None:
                await self._route(writer, *parsed)
        except _HttpError as exc:
            await self._respond_json(
                writer, exc.status, {"error": str(exc)}
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request/mid-response
        except Exception as exc:  # never kill the accept loop
            self.admission.stats.errors += 1
            try:
                await self._respond_json(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None  # connection opened and closed without a request
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "malformed Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(
                413, f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        path = target.split("?", 1)[0]
        if path == "/sweep":
            if method != "POST":
                raise _HttpError(405, "use POST /sweep")
            await self._handle_sweep(writer, body)
        elif path == "/healthz" and method == "GET":
            await self._respond_json(
                writer,
                200,
                {
                    "status": "ok",
                    "stats": self.admission.stats.snapshot(),
                    "in_flight_pairs": self.admission.in_flight(),
                    "cold_sweeps": self._cold_sweeps,
                    "runners": len(self._runners),
                },
            )
        elif path == "/schemes" and method == "GET":
            await self._respond_json(writer, 200, available_schemes())
        elif path == "/workloads" and method == "GET":
            await self._respond_json(writer, 200, sorted(ALL_WORKLOADS))
        else:
            raise _HttpError(404, f"unknown endpoint {method} {path}")

    async def _handle_sweep(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            request = parse_sweep_request(body)
        except ProtocolError as exc:
            self.admission.stats.errors += 1
            await self._respond_json(writer, 400, {"error": str(exc)})
            return
        records = (
            request.records or self.config.records or scaled_records(None)
        )
        runner = self._runner_for(records, request.prefetcher, request.machine)
        loop = asyncio.get_running_loop()
        # No await between partition and (reject | create_task): the
        # admitted set is claimed atomically with respect to every
        # other request on this loop.
        warm, joined, admitted = self.admission.partition(
            runner, request.pairs(), loop
        )
        if admitted and self._cold_sweeps >= self.config.max_queue:
            self.admission.abandon(runner, admitted)
            self.admission.stats.rejected += 1
            await self._respond_json(
                writer,
                503,
                {
                    "error": (
                        f"cold-work queue full "
                        f"({self._cold_sweeps} sweeps in flight, "
                        f"max {self.config.max_queue}); retry later"
                    )
                },
            )
            return
        self.admission.stats.requests += 1
        if admitted:
            self._cold_sweeps += 1
            asyncio.ensure_future(self._simulate(runner, admitted))
        admitted_set = set(admitted)
        sources = {pair: "warm" for pair in warm}
        for pair in joined:
            sources[pair] = (
                "simulated" if pair in admitted_set else "inflight"
            )
        if request.stream:
            await self._respond_stream(writer, warm, joined, sources)
        else:
            await self._respond_bulk(writer, warm, joined, sources)

    async def _respond_bulk(
        self,
        writer: asyncio.StreamWriter,
        warm: Dict[Pair, RunResult],
        joined: Dict[Pair, "asyncio.Future[RunResult]"],
        sources: Dict[Pair, str],
    ) -> None:
        results = {
            pair_token(*pair): scalars_of(result)
            for pair, result in warm.items()
        }
        try:
            for pair, future in joined.items():
                results[pair_token(*pair)] = scalars_of(await future)
        except Exception as exc:
            await self._respond_json(
                writer, 500, {"error": f"sweep failed: {exc}"}
            )
            return
        await self._respond_json(
            writer,
            200,
            {
                "results": results,
                "sources": {
                    pair_token(*pair): source
                    for pair, source in sources.items()
                },
                "stats": self.admission.stats.snapshot(),
            },
        )

    async def _respond_stream(
        self,
        writer: asyncio.StreamWriter,
        warm: Dict[Pair, RunResult],
        joined: Dict[Pair, "asyncio.Future[RunResult]"],
        sources: Dict[Pair, str],
    ) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        for pair, result in warm.items():
            await self._write_chunk(
                writer, encode_jsonl(result_event(*pair, "warm", result))
            )

        async def labelled(pair: Pair) -> Tuple[Pair, RunResult]:
            return pair, await joined[pair]

        tasks = {
            asyncio.ensure_future(labelled(pair)): pair for pair in joined
        }
        pending = set(tasks)
        failure: Optional[BaseException] = None
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:  # drain everything: no abandoned futures
                pair = tasks[task]
                try:
                    _, result = task.result()
                except Exception as exc:
                    failure = exc
                else:
                    await self._write_chunk(
                        writer,
                        encode_jsonl(
                            result_event(*pair, sources[pair], result)
                        ),
                    )
        if failure is not None:
            await self._write_chunk(
                writer,
                encode_jsonl(
                    {"event": "error", "error": f"sweep failed: {failure}"}
                ),
            )
        else:
            await self._write_chunk(
                writer,
                encode_jsonl(
                    {
                        "event": "done",
                        "pairs": len(warm) + len(joined),
                        "stats": self.admission.stats.snapshot(),
                    }
                ),
            )
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    @staticmethod
    async def _write_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
        writer.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")
        await writer.drain()

    @staticmethod
    async def _respond_json(
        writer: asyncio.StreamWriter, status: int, payload: object
    ) -> None:
        body = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode()
        writer.write(head + body)
        await writer.drain()


async def serve(
    config: Optional[ServiceConfig] = None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> None:
    """Run a service in the current event loop until cancelled."""
    service = SweepService(config)
    server = await asyncio.start_server(service.handle, host, port)
    bound = server.sockets[0].getsockname()
    print(f"sweep service listening on http://{bound[0]}:{bound[1]}")
    try:
        async with server:
            await server.serve_forever()
    finally:
        service.close()


class ServiceThread:
    """A sweep service hosted on a background thread.

    The harness tests, benches and ``bench_service.py`` all embed the
    server this way::

        with ServiceThread(ServiceConfig(records=4000)) as svc:
            client = ServiceClient(port=svc.port)
            ...

    ``port`` is the ephemeral port actually bound (the constructor's
    ``port=0`` default asks the OS for a free one, so parallel test
    runs never collide).
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._config = config
        self._host = host
        self._port = port
        self.port: Optional[int] = None
        self.service: Optional[SweepService] = None
        self._ready = ThreadEvent()
        self._failure: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread = Thread(
            target=self._run, name="sweep-service", daemon=True
        )

    def start(self) -> "ServiceThread":
        self._thread.start()
        self._ready.wait()
        if self._failure is not None:
            raise RuntimeError("sweep service failed to start") from self._failure
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced by start()
            self._failure = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        self.service = SweepService(self._config)
        server = await asyncio.start_server(
            self.service.handle, self._host, self._port
        )
        self.port = server.sockets[0].getsockname()[1]
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            self.service.close()
