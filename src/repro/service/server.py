"""The sweep service: a long-lived asyncio HTTP simulation server.

Request handling is a thin, single-threaded asyncio loop; simulation is
not.  A ``POST /sweep`` request is partitioned by the admission table
(:mod:`repro.service.admission`) into warm pairs (served straight out
of the runner's fingerprinted result cache), in-flight pairs (joined to
the future some concurrent request already owns) and admitted pairs —
only the last are queued, through ``Runner.sweep_pairs`` running in a
small thread pool gated by a semaphore (``REPRO_SERVICE_CONCURRENCY``
sweeps at a time; each sweep may itself fan out across ``jobs`` worker
processes).  A request whose cold work would exceed ``max_queue``
pending sweeps is refused with 503 before any simulation starts — the
admission-control analogue of ACIC bypassing a line the predictor says
is not worth caching.

Endpoints::

    POST /sweep      run (or fetch) a grid; see repro.service.protocol
    GET  /healthz    liveness + admission counters + queue depth
    GET  /schemes    registered scheme names -> descriptions
    GET  /workloads  registered workload names

The server speaks minimal HTTP/1.1 over asyncio streams (stdlib only,
one connection per request, ``Connection: close``).  Streaming
responses use chunked transfer encoding, one JSON line per completed
pair, so clients watch cold grids fill in pair by pair.

Shutdown is graceful: SIGTERM/SIGINT (foreground :func:`serve`) or
``ServiceThread.stop()`` flip the service into *draining* — new
``/sweep`` requests get 503, in-flight sharded sweeps
(``REPRO_SHARD_WINDOW``) stop at their next window boundary with the
warm state fsync'd in the shard ledger (:mod:`repro.harness.shards`),
and the process exits cleanly; a restarted server resumes the drained
work from the ledgers.

:class:`ServiceThread` hosts a service on a background thread for
tests, benches and :mod:`scripts.bench_service`;
``scripts/serve_sweeps.py`` is the foreground entrypoint.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from threading import Event as ThreadEvent, Thread
from typing import Dict, List, Optional, Tuple

from repro.harness.experiment import scaled_records
from repro.harness.runner import Runner
from repro.harness.schemes import available_schemes
from repro.harness.shards import DrainRequested
from repro.service.admission import Admission, Pair
from repro.service.protocol import (
    MAX_BODY_BYTES,
    ProtocolError,
    encode_jsonl,
    pair_token,
    parse_sweep_request,
    result_event,
    scalars_of,
    shard_event,
)
from repro.uarch.params import MachineParams
from repro.uarch.timing import RunResult
from repro.workloads.profiles import known_workload_names

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _service_concurrency() -> int:
    """Concurrent ``Runner.sweep_pairs`` calls (REPRO_SERVICE_CONCURRENCY).

    Each slot is one sweeping thread (which may itself drive ``jobs``
    worker processes); two slots let a short request overtake a long
    one without oversubscribing the machine by default.
    """
    env = os.environ.get("REPRO_SERVICE_CONCURRENCY", "").strip()
    if not env:
        return 2
    slots = int(env)
    if slots < 1:
        raise ValueError(
            f"REPRO_SERVICE_CONCURRENCY must be >= 1, got {slots}"
        )
    return slots


@dataclass
class ServiceConfig:
    """Server-side knobs (requests may narrow, never widen, them)."""

    #: Default trace length for requests that omit ``records``
    #: (None = the harness default, honouring ``REPRO_SCALE``).
    records: Optional[int] = None
    #: Worker processes per cold sweep (``Runner.sweep_pairs(jobs=)``).
    jobs: int = 1
    #: Concurrent sweeps; None = ``REPRO_SERVICE_CONCURRENCY`` (or 2).
    max_concurrent_sweeps: Optional[int] = None
    #: Cold sweeps allowed in flight/queued before requests that would
    #: add more are refused with 503 (warm/joined requests always pass).
    max_queue: int = 8

    def concurrency(self) -> int:
        return self.max_concurrent_sweeps or _service_concurrency()


class _HttpError(Exception):
    """Request-level failure carrying its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class SweepService:
    """One service instance: admission table, runner pool, sim slots."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.admission = Admission()
        slots = self.config.concurrency()
        self._sim_slots = asyncio.Semaphore(slots)
        self._sim_pool = ThreadPoolExecutor(
            max_workers=slots, thread_name_prefix="sweep-sim"
        )
        #: Cold sweeps scheduled and not yet finished (the 503 gate).
        self._cold_sweeps = 0
        #: Graceful-shutdown flag: set by :meth:`begin_drain`; every new
        #: ``/sweep`` is then refused with 503, and in-flight sharded
        #: sweeps observe it via their ``should_stop`` poll and stop at
        #: the next ledgered window boundary.  Written only on the event
        #: loop thread; read (as a plain bool) from sim-pool threads.
        self.draining = False
        #: One Runner per distinct (records, prefetcher, machine)
        #: configuration, shared across requests so the in-memory
        #: result cache and the context LRU are server-wide.  Only the
        #: event-loop thread mutates this dict.
        self._runners: Dict[Tuple[int, str, str], Runner] = {}

    def close(self) -> None:
        self._sim_pool.shutdown(wait=False, cancel_futures=True)

    # -- graceful drain -----------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting; let in-flight work run to a safe stopping point."""
        self.draining = True

    async def shutdown(self, drain_timeout: float = 30.0) -> None:
        """Drain and close: the SIGTERM path.

        Sets :attr:`draining` (new ``/sweep`` requests 503 from then
        on), then waits up to ``drain_timeout`` seconds for in-flight
        sweeps to finish — sharded sweeps stop early at their next
        window boundary with the boundary already fsync'd in the shard
        ledger, so a restarted server resumes from exactly there.
        Whatever is still unresolved at the deadline is failed rather
        than left hanging, and the sim pool is shut down.  The caller
        keeps serving (and 503ing) while this runs; it closes the
        listener afterwards.
        """
        self.begin_drain()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + drain_timeout
        while self._cold_sweeps > 0 and loop.time() < deadline:
            await asyncio.sleep(0.05)
        self.admission.fail_all(
            DrainRequested("service-shutdown", 0, 0)
        )
        self.close()

    # -- runner pool --------------------------------------------------------

    def _runner_for(
        self, records: int, prefetcher: str, machine: MachineParams
    ) -> Runner:
        key = (records, prefetcher, machine.fingerprint())
        runner = self._runners.get(key)
        if runner is None:
            runner = Runner(
                records=records, prefetcher=prefetcher, machine=machine
            )
            self._runners[key] = runner
        return runner

    # -- simulation ---------------------------------------------------------

    async def _simulate(
        self,
        runner: Runner,
        admitted: List[Pair],
        events: Optional["asyncio.Queue"] = None,
    ) -> None:
        """Queue one request's admitted pairs through ``sweep_pairs``.

        Runs in a sim-pool thread behind the concurrency semaphore.
        Per-pair completions resolve the in-flight futures as they land
        (threadsafe hop back onto the loop); pairs the sweep satisfied
        from a cache layer instead of ``on_result`` are resolved from
        the returned map, and a crashed sweep fails every still-pending
        future so joined requests get an error, not a hung connection.

        ``events`` (streaming requests) receives one
        :func:`~repro.service.protocol.shard_event` per completed shard
        window when sharded execution is active.  The sweep polls
        :attr:`draining` at every shard boundary: a drain stops it with
        :class:`~repro.harness.shards.DrainRequested` — boundary state
        already fsync'd in the shard ledger, so the restarted server
        resumes there — which fails the pending futures *without*
        counting as a service error.
        """
        loop = asyncio.get_running_loop()

        def on_result(workload: str, scheme: str, result: RunResult) -> None:
            loop.call_soon_threadsafe(
                self.admission.resolve, runner, workload, scheme, result
            )

        def on_shard(
            workload: str, scheme: str, shard: int, done: int, total: int
        ) -> None:
            if events is not None:
                loop.call_soon_threadsafe(
                    events.put_nowait,
                    shard_event(workload, scheme, shard, done, total),
                )

        try:
            async with self._sim_slots:
                results = await loop.run_in_executor(
                    self._sim_pool,
                    lambda: runner.sweep_pairs(
                        admitted,
                        jobs=self.config.jobs,
                        on_result=on_result,
                        on_shard=on_shard,
                        should_stop=lambda: self.draining,
                    ),
                )
            for pair in admitted:
                self.admission.resolve(runner, *pair, results[pair])
        except DrainRequested as exc:
            self.admission.fail(runner, admitted, exc)
        except Exception as exc:
            self.admission.stats.errors += 1
            self.admission.fail(runner, admitted, exc)
        finally:
            self._cold_sweeps -= 1

    # -- request handling ---------------------------------------------------

    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: read a request, route it, close."""
        try:
            parsed = await self._read_request(reader)
            if parsed is not None:
                await self._route(writer, *parsed)
        except _HttpError as exc:
            await self._respond_json(
                writer, exc.status, {"error": str(exc)}
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request/mid-response
        except Exception as exc:  # never kill the accept loop
            self.admission.stats.errors += 1
            try:
                await self._respond_json(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None  # connection opened and closed without a request
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "malformed Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(
                413, f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        path = target.split("?", 1)[0]
        if path == "/sweep":
            if method != "POST":
                raise _HttpError(405, "use POST /sweep")
            await self._handle_sweep(writer, body)
        elif path == "/healthz" and method == "GET":
            await self._respond_json(
                writer,
                200,
                {
                    "status": "draining" if self.draining else "ok",
                    "draining": self.draining,
                    "stats": self.admission.stats.snapshot(),
                    "in_flight_pairs": self.admission.in_flight(),
                    "cold_sweeps": self._cold_sweeps,
                    "runners": len(self._runners),
                },
            )
        elif path == "/schemes" and method == "GET":
            await self._respond_json(writer, 200, available_schemes())
        elif path == "/workloads" and method == "GET":
            await self._respond_json(writer, 200, list(known_workload_names()))
        else:
            raise _HttpError(404, f"unknown endpoint {method} {path}")

    async def _handle_sweep(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            request = parse_sweep_request(body)
        except ProtocolError as exc:
            self.admission.stats.errors += 1
            await self._respond_json(writer, 400, {"error": str(exc)})
            return
        if self.draining:
            # Graceful shutdown in progress: even warm requests are
            # refused, because the listener may close at any moment.
            self.admission.stats.rejected += 1
            await self._respond_json(
                writer,
                503,
                {"error": "server draining for shutdown; retry later"},
            )
            return
        records = (
            request.records or self.config.records or scaled_records(None)
        )
        runner = self._runner_for(records, request.prefetcher, request.machine)
        loop = asyncio.get_running_loop()
        # No await between partition and (reject | create_task): the
        # admitted set is claimed atomically with respect to every
        # other request on this loop.
        warm, joined, admitted = self.admission.partition(
            runner, request.pairs(), loop
        )
        if admitted and self._cold_sweeps >= self.config.max_queue:
            self.admission.abandon(runner, admitted)
            self.admission.stats.rejected += 1
            await self._respond_json(
                writer,
                503,
                {
                    "error": (
                        f"cold-work queue full "
                        f"({self._cold_sweeps} sweeps in flight, "
                        f"max {self.config.max_queue}); retry later"
                    )
                },
            )
            return
        self.admission.stats.requests += 1
        # Streaming requests that admit cold work get a per-request
        # event queue: the sweep posts one shard_event per completed
        # window boundary (sharded execution only) and the stream
        # multiplexes them between result lines.
        events: Optional["asyncio.Queue"] = (
            asyncio.Queue() if request.stream and admitted else None
        )
        if admitted:
            self._cold_sweeps += 1
            asyncio.ensure_future(self._simulate(runner, admitted, events))
        admitted_set = set(admitted)
        sources = {pair: "warm" for pair in warm}
        for pair in joined:
            sources[pair] = (
                "simulated" if pair in admitted_set else "inflight"
            )
        if request.stream:
            await self._respond_stream(writer, warm, joined, sources, events)
        else:
            await self._respond_bulk(writer, warm, joined, sources)

    async def _respond_bulk(
        self,
        writer: asyncio.StreamWriter,
        warm: Dict[Pair, RunResult],
        joined: Dict[Pair, "asyncio.Future[RunResult]"],
        sources: Dict[Pair, str],
    ) -> None:
        results = {
            pair_token(*pair): scalars_of(result)
            for pair, result in warm.items()
        }
        try:
            for pair, future in joined.items():
                results[pair_token(*pair)] = scalars_of(await future)
        except DrainRequested as exc:
            # Not a failure: the server is shutting down with this
            # request's progress ledgered.  503 tells the client to
            # retry against the restarted server, which resumes.
            await self._respond_json(
                writer, 503, {"error": f"server draining: {exc}"}
            )
            return
        except Exception as exc:
            await self._respond_json(
                writer, 500, {"error": f"sweep failed: {exc}"}
            )
            return
        await self._respond_json(
            writer,
            200,
            {
                "results": results,
                "sources": {
                    pair_token(*pair): source
                    for pair, source in sources.items()
                },
                "stats": self.admission.stats.snapshot(),
            },
        )

    async def _respond_stream(
        self,
        writer: asyncio.StreamWriter,
        warm: Dict[Pair, RunResult],
        joined: Dict[Pair, "asyncio.Future[RunResult]"],
        sources: Dict[Pair, str],
        events: Optional["asyncio.Queue"] = None,
    ) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        for pair, result in warm.items():
            await self._write_chunk(
                writer, encode_jsonl(result_event(*pair, "warm", result))
            )

        async def labelled(pair: Pair) -> Tuple[Pair, RunResult]:
            return pair, await joined[pair]

        tasks = {
            asyncio.ensure_future(labelled(pair)): pair for pair in joined
        }
        pending = set(tasks)
        # One extra competitor in the wait set: the next shard progress
        # event.  Re-armed after each arrival, cancelled once every
        # pair future has settled (late events are flushed below).
        event_task: Optional["asyncio.Task"] = (
            asyncio.ensure_future(events.get()) if events is not None else None
        )
        failure: Optional[BaseException] = None
        while pending:
            waiting = pending | ({event_task} if event_task is not None else set())
            done, _ = await asyncio.wait(
                waiting, return_when=asyncio.FIRST_COMPLETED
            )
            if event_task is not None and event_task in done:
                done.discard(event_task)
                await self._write_chunk(
                    writer, encode_jsonl(event_task.result())
                )
                event_task = asyncio.ensure_future(events.get())
            pending -= done
            for task in done:  # drain everything: no abandoned futures
                pair = tasks[task]
                try:
                    _, result = task.result()
                except Exception as exc:
                    failure = exc
                else:
                    await self._write_chunk(
                        writer,
                        encode_jsonl(
                            result_event(*pair, sources[pair], result)
                        ),
                    )
        if event_task is not None:
            event_task.cancel()
            # Flush shard events that landed after the last pair future
            # settled, so a drained stream still shows its final
            # ledgered boundary before the error line.
            while events is not None and not events.empty():
                await self._write_chunk(
                    writer, encode_jsonl(events.get_nowait())
                )
        if failure is not None:
            await self._write_chunk(
                writer,
                encode_jsonl(
                    {
                        "event": "error",
                        "error": (
                            f"server draining: {failure}"
                            if isinstance(failure, DrainRequested)
                            else f"sweep failed: {failure}"
                        ),
                        "draining": isinstance(failure, DrainRequested),
                    }
                ),
            )
        else:
            await self._write_chunk(
                writer,
                encode_jsonl(
                    {
                        "event": "done",
                        "pairs": len(warm) + len(joined),
                        "stats": self.admission.stats.snapshot(),
                    }
                ),
            )
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    @staticmethod
    async def _write_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
        writer.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")
        await writer.drain()

    @staticmethod
    async def _respond_json(
        writer: asyncio.StreamWriter, status: int, payload: object
    ) -> None:
        body = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode()
        writer.write(head + body)
        await writer.drain()


async def serve(
    config: Optional[ServiceConfig] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    drain_timeout: float = 30.0,
) -> None:
    """Run a service in the current event loop until stopped.

    Installs SIGTERM/SIGINT handlers (where the platform supports
    them): the first signal starts a *graceful drain* — new ``/sweep``
    requests are refused with 503 while in-flight sweeps run to their
    next shard boundary (state fsync'd in the shard ledger), then the
    listener closes and this coroutine returns normally, so the hosting
    process exits 0.  A restarted server resumes the drained work from
    the ledgers.  Platforms without ``add_signal_handler`` fall back to
    serve-until-cancelled (the pre-drain behaviour).
    """
    service = SweepService(config)
    server = await asyncio.start_server(service.handle, host, port)
    bound = server.sockets[0].getsockname()
    print(
        f"sweep service listening on http://{bound[0]}:{bound[1]}", flush=True
    )
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    handled = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            handled.append(sig)
        except (NotImplementedError, RuntimeError):
            pass  # e.g. non-main thread or unsupported platform
    try:
        async with server:
            if not handled:
                await server.serve_forever()
                return
            forever = asyncio.ensure_future(server.serve_forever())
            stopped = asyncio.ensure_future(stop.wait())
            try:
                await asyncio.wait(
                    {forever, stopped}, return_when=asyncio.FIRST_COMPLETED
                )
                if stopped.done():
                    print(
                        "sweep service draining "
                        f"({service._cold_sweeps} sweeps in flight)...",
                        flush=True,
                    )
                    # Keep serving while the drain runs: requests still
                    # get answers (503 for new sweeps) until the last
                    # in-flight sweep parks at a ledgered boundary.
                    await service.shutdown(drain_timeout)
                    print("sweep service drained; exiting", flush=True)
            finally:
                for task in (forever, stopped):
                    task.cancel()
    finally:
        for sig in handled:
            loop.remove_signal_handler(sig)
        service.close()


class ServiceThread:
    """A sweep service hosted on a background thread.

    The harness tests, benches and ``bench_service.py`` all embed the
    server this way::

        with ServiceThread(ServiceConfig(records=4000)) as svc:
            client = ServiceClient(port=svc.port)
            ...

    ``port`` is the ephemeral port actually bound (the constructor's
    ``port=0`` default asks the OS for a free one, so parallel test
    runs never collide).

    ``stop()`` performs the same graceful drain as a SIGTERM'd
    foreground server: in-flight sweeps run to their next shard
    boundary (ledgered, resumable) instead of being dropped on the
    floor — the bug this replaced was a stop that closed the sim pool
    under a live sweep.  ``begin_drain()`` flips the 503 gate without
    stopping, for tests that drive the drain window explicitly.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_timeout: float = 30.0,
    ) -> None:
        self._config = config
        self._host = host
        self._port = port
        self._drain_timeout = drain_timeout
        self.port: Optional[int] = None
        self.service: Optional[SweepService] = None
        self._ready = ThreadEvent()
        self._failure: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread = Thread(
            target=self._run, name="sweep-service", daemon=True
        )

    def start(self) -> "ServiceThread":
        self._thread.start()
        self._ready.wait()
        if self._failure is not None:
            raise RuntimeError("sweep service failed to start") from self._failure
        return self

    def begin_drain(self) -> None:
        """Flip the service into draining (503 new sweeps) without stopping."""
        if self._loop is not None and self.service is not None:
            self._loop.call_soon_threadsafe(self.service.begin_drain)

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30 + self._drain_timeout)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced by start()
            self._failure = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        self.service = SweepService(self._config)
        server = await asyncio.start_server(
            self.service.handle, self._host, self._port
        )
        self.port = server.sockets[0].getsockname()[1]
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        try:
            async with server:
                await self._stop.wait()
                # Drain before the listener closes: in-flight sweeps
                # park at their next ledgered shard boundary (or finish)
                # instead of dying with the thread.
                await self.service.shutdown(self._drain_timeout)
        finally:
            self.service.close()
