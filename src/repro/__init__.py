"""ACIC: Admission-Controlled Instruction Cache — full reproduction.

A pure-Python, trace-driven reproduction of the HPCA 2023 paper
"ACIC: Admission-Controlled Instruction Cache" (arXiv 2211.10480),
including the simulation substrate (set-associative caches, replacement
policies, branch-prediction stack, instruction prefetchers, memory
hierarchy), the ACIC mechanism itself (i-Filter + CSHR + two-level
admission predictor), every baseline the paper compares against, the
synthetic datacenter workload generators, and a benchmark harness that
regenerates every table and figure of the paper's evaluation.

Quick start::

    from repro import run_experiment
    result = run_experiment("media-streaming", "acic")
    print(result.mpki, result.speedup)

See README.md and DESIGN.md for the full tour.
"""

from typing import Any

__version__ = "1.0.0"

__all__ = [
    "ExperimentResult",
    "run_experiment",
    "available_schemes",
    "DATACENTER_WORKLOADS",
    "SPEC_WORKLOADS",
    "__version__",
]

_LAZY_EXPORTS = {
    "ExperimentResult": ("repro.harness.experiment", "ExperimentResult"),
    "run_experiment": ("repro.harness.experiment", "run_experiment"),
    "available_schemes": ("repro.harness.schemes", "available_schemes"),
    "DATACENTER_WORKLOADS": ("repro.workloads.profiles", "DATACENTER_WORKLOADS"),
    "SPEC_WORKLOADS": ("repro.workloads.profiles", "SPEC_WORKLOADS"),
}


def __getattr__(name: str) -> Any:
    """Lazily resolve the public API to keep ``import repro`` light.

    Substrate subpackages (``repro.mem``, ``repro.core``...) can be
    imported directly without pulling in the whole harness.
    """
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
