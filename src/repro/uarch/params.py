"""Machine parameters (Table II) and timing-model configuration.

The paper's core model is Sunny-Cove-like: 6-wide fetch with a 24-entry
fetch target queue, 60-entry decode queue, 352-entry ROB, TAGE + 8K BTB,
32 KB/8-way L1i (4 cycles), 512 KB L2 (15), 2 MB L3 (35), DDR4-3200.

Our timing model is front-end-centric (DESIGN.md section 2): each fetch
record costs one front-end cycle; i-cache misses stall fetch for the
hierarchy latency minus whatever the decode-queue backlog lets the
backend hide; mispredicted branches flush the pipe.  The parameters
below are the knobs of that model.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.mem.cache import CacheConfig
from repro.mem.hierarchy import HierarchyConfig


@dataclass(frozen=True)
class MachineParams:
    """Table II machine + timing-model constants."""

    fetch_width: int = 6
    decode_queue_instrs: int = 60
    backend_ipc: float = 5.0
    branch_mispredict_penalty: int = 12
    l1i_hit_latency: int = 4       # pipelined; throughput 1 group/cycle
    mshr_entries: int = 16
    ftq_depth_records: int = 40    # FDP run-ahead (~FTQ of 24 targets)
    warmup_fraction: float = 0.10  # Section IV-A: first 10% warms up
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)

    def __post_init__(self) -> None:
        if self.fetch_width <= 0 or self.backend_ipc <= 0:
            raise ValueError("widths must be positive")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )

    def fingerprint(self) -> str:
        """Content hash over every field, for cache keys.

        Used wherever derived data depends on the *whole* machine —
        sweep-result cache entries and entangling plans (whose recorded
        timing is machine-coupled).  Frontend plans deliberately use the
        narrower :func:`repro.frontend.plan.frontend_fingerprint`
        instead.
        """
        blob = json.dumps(asdict(self), sort_keys=True, default=str)
        return hashlib.sha1(blob.encode()).hexdigest()[:10]


#: The baseline 32 KB, 8-way L1 i-cache of Table II.
BASELINE_L1I = CacheConfig(32 * 1024, 8, name="L1i")

#: The "just add SRAM" comparison point: 36 KB, 9-way (Section IV-F).
LARGER_L1I_36K = CacheConfig(36 * 1024, 9, name="L1i-36K")

#: The 40 KB, 10-way variant listed in Table IV.
LARGER_L1I_40K = CacheConfig(40 * 1024, 10, name="L1i-40K")

DEFAULT_MACHINE = MachineParams()
