"""The front-end timing engine.

A fluid-model decoupled front-end (DESIGN.md section 2): fetch delivers
one record per cycle into the decode queue; the backend drains
``backend_ipc`` instructions per cycle; i-cache misses stall fetch for
the hierarchy latency minus what the queue backlog hides; mispredicted
branches flush; prefetchers (FDP run-ahead or entangling) inject fills
through the MSHR file.

The engine is scheme-agnostic: anything implementing the L1I scheme
protocol (``lookup`` / ``fill`` / ``prefetch_fill`` / ``contains``) can
be measured.  Statistics honour the paper's methodology: the first
``warmup_fraction`` of the trace warms all structures and is excluded
from reported numbers (Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Protocol

from repro.frontend.stack import BranchStack
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.mshr import MSHRFile
from repro.uarch.params import MachineParams
from repro.workloads.trace import Trace

if TYPE_CHECKING:  # avoid an import cycle at runtime
    from typing import Union

    from repro.frontend.entangling_plan import EntanglingPlan
    from repro.frontend.plan import FrontendPlan

    AnyPlan = Union[FrontendPlan, EntanglingPlan]


class L1IScheme(Protocol):
    """The instruction-supply scheme under test."""

    name: str

    def lookup(self, block: int, t: int, cycle: int) -> bool: ...

    def fill(self, block: int, t: int, cycle: int) -> None: ...

    def prefetch_fill(self, block: int, t: int, cycle: int) -> None: ...

    def contains(self, block: int) -> bool: ...


class Prefetcher(Protocol):
    """Prefetch engine driving fills through the MSHRs."""

    name: str

    def candidates(self, i: int) -> list: ...

    def observe_fetch(self, block: int, cycle: int) -> None: ...

    def on_demand_miss(self, block: int, cycle: int) -> None: ...


@dataclass
class RunResult:
    """Post-warmup measurements of one (trace, scheme, prefetcher) run."""

    workload: str
    scheme_name: str
    prefetcher_name: str
    instructions: int = 0
    accesses: int = 0
    cycles: float = 0.0
    demand_misses: int = 0
    late_prefetch_misses: int = 0
    prefetches_issued: int = 0
    mispredicted_transitions: int = 0
    scheme: Optional[object] = field(default=None, repr=False)

    @property
    def mpki(self) -> float:
        """L1i demand misses per 1000 instructions."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.demand_misses / self.instructions

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def miss_ratio(self) -> float:
        return self.demand_misses / self.accesses if self.accesses else 0.0

    def speedup_over(self, baseline: "RunResult") -> float:
        """Execution-time speedup of *this* run relative to ``baseline``."""
        if self.cycles == 0:
            raise ValueError("run has no cycles; was the trace empty?")
        return baseline.cycles / self.cycles

    def mpki_reduction_over(self, baseline: "RunResult") -> float:
        """MPKI reduction (%) relative to ``baseline`` (positive = fewer)."""
        if baseline.mpki == 0:
            return 0.0
        return 100.0 * (baseline.mpki - self.mpki) / baseline.mpki


#: Loop counters serialized into an engine checkpoint, in capture order.
_COUNTER_FIELDS = (
    "cycles",
    "queue",
    "demand_misses",
    "late_prefetch",
    "prefetches_issued",
    "instructions",
    "base_cycles",
    "base_misses",
    "base_late",
    "base_issued",
    "base_instr",
)


def simulate(
    trace: Trace,
    scheme: L1IScheme,
    prefetcher: Optional[Prefetcher] = None,
    stack: Optional[BranchStack] = None,
    machine: Optional[MachineParams] = None,
    hierarchy: Optional[MemoryHierarchy] = None,
    plan: Optional["AnyPlan"] = None,
    resume: Optional[dict] = None,
    checkpoint_every: int = 0,
    on_checkpoint=None,
) -> Optional[RunResult]:
    """Run ``scheme`` over ``trace`` and return post-warmup measurements.

    Two frontend modes (pinned against each other by
    ``tests/test_frontend_plan.py`` and ``tests/test_entangling_plan.py``):

    * **live** — ``prefetcher`` and ``stack`` drive branch training and
      the prefetch candidate stream per record (the reference path, and
      the recording pass of the two-pass entangling plan);
    * **planned** — ``plan`` is a precomputed
      :class:`~repro.frontend.plan.FrontendPlan` (fdp/none, always
      bit-identical to live) or
      :class:`~repro.frontend.entangling_plan.EntanglingPlan`
      (bit-identical when replayed for its reference scheme; documented
      approximation across schemes) and the engine reads mispredict
      flags and candidate spans from flat arrays, touching no
      branch-stack or prefetcher code at all.

    The loop body runs once per fetch record — two million times for a
    full-length sweep pair — so everything invariant is hoisted out of
    it: trace arrays become plain Python lists (one bulk conversion
    instead of per-record ndarray scalar boxing), scheme/prefetcher/MSHR
    methods are bound to locals, ``int(cycles)`` is computed once per
    program point that needs it, branch retirement is gated on the
    precomputed branch-kind list, and the MSHR drain is gated on the
    file's running *next-ready cycle* instead of probing its occupancy
    every record.

    Checkpoint/resume (``tests/test_checkpoint.py`` pins chunked runs
    bit-identical to single-pass): with ``checkpoint_every > 0`` the
    engine captures its full warm state — loop counters plus the
    ``save_state()`` of every stateful collaborator — at the top of each
    iteration whose absolute index is a multiple of ``checkpoint_every``
    (state == completion of records ``0..i-1``), *before* the warmup
    snapshot branch so a resume landing exactly on ``warmup_end``
    re-derives the base counters identically.  ``on_checkpoint(state)``
    receives each capture; returning truthy stops the run early and
    ``simulate`` returns None.  ``resume`` takes such a state and
    continues from its ``next_record``; the engine restores its own
    collaborators (it constructs the MSHR/hierarchy), so callers only
    rebuild the scheme/stack/prefetcher fresh from their factories.
    The default ``checkpoint_every=0`` keeps the hot loop at one extra
    integer compare per record.
    """
    if machine is None:
        raise TypeError("simulate() requires machine parameters")
    if plan is not None:
        if prefetcher is not None or stack is not None:
            raise ValueError(
                "pass either a precomputed plan or a live prefetcher/stack, "
                "not both"
            )
        return _simulate_planned(
            trace,
            scheme,
            machine,
            hierarchy,
            plan,
            resume=resume,
            checkpoint_every=checkpoint_every,
            on_checkpoint=on_checkpoint,
        )
    if prefetcher is None or stack is None:
        raise TypeError(
            "simulate() needs a prefetcher and a stack when no plan is given"
        )
    hierarchy = hierarchy or MemoryHierarchy(machine.hierarchy)
    mshr = MSHRFile(machine.mshr_entries)

    blocks = trace.blocks_list
    instr_counts = trace.instrs_list
    kinds = trace.branch_kind_list
    n = len(blocks)
    warmup_end = int(n * machine.warmup_fraction)

    backend_ipc = machine.backend_ipc
    queue_cap = float(machine.decode_queue_instrs)
    penalty = machine.branch_mispredict_penalty

    # Schemes that consume the shared replacement pre-pass bind their
    # per-record arrays here (pure, idempotent — safe per resumed chunk).
    prepare_trace = getattr(scheme, "prepare_trace", None)
    if prepare_trace is not None:
        prepare_trace(trace)

    stack_retire = stack.retire
    pf_candidates = prefetcher.candidates
    pf_observe_fetch = prefetcher.observe_fetch
    pf_on_demand_miss = prefetcher.on_demand_miss
    hierarchy_access = hierarchy.access
    mshr_drain = mshr.drain
    mshr_ready_cycle = mshr.ready_cycle
    mshr_cancel = mshr.cancel
    mshr_allocate = mshr.allocate
    mshr_contains = mshr.__contains__

    cycles = 0.0
    queue = 0.0
    demand_misses = 0
    late_prefetch = 0
    prefetches_issued = 0
    instructions = 0

    # Snapshots taken when warmup ends.
    base_cycles = 0.0
    base_misses = 0
    base_late = 0
    base_issued = 0
    base_instr = 0
    base_mispred = 0

    start = 0
    if resume is not None:
        if resume.get("mode") != "live":
            raise ValueError(
                f"resume state is {resume.get('mode')!r}, this is a live run"
            )
        start = resume["next_record"]
        counters = resume["counters"]
        (cycles, queue, demand_misses, late_prefetch, prefetches_issued,
         instructions, base_cycles, base_misses, base_late, base_issued,
         base_instr) = (counters[k] for k in _COUNTER_FIELDS)
        base_mispred = counters["base_mispred"]
        scheme.load_state(resume["scheme"])
        mshr.load_state(resume["mshr"])
        hierarchy.load_state(resume["hierarchy"])
        stack.load_state(resume["stack"])
        prefetcher.load_state(resume["prefetcher"])
    next_ready = mshr.next_ready

    # Hoisted after the resume load on purpose: the flat policy twins
    # re-close their protocol methods over freshly loaded containers, so
    # binding these any earlier would drive stale closures.
    scheme_lookup = scheme.lookup
    scheme_fill = scheme.fill
    scheme_prefetch_fill = scheme.prefetch_fill
    scheme_contains = scheme.contains

    if checkpoint_every > 0:
        # Next absolute multiple strictly past the starting record.
        next_ckpt = (start // checkpoint_every + 1) * checkpoint_every
    else:
        next_ckpt = n + 1  # never taken: one dead int compare per record

    for i in range(start, n):
        if i == next_ckpt:
            next_ckpt += checkpoint_every
            state = {
                "mode": "live",
                "next_record": i,
                "counters": {
                    "cycles": cycles,
                    "queue": queue,
                    "demand_misses": demand_misses,
                    "late_prefetch": late_prefetch,
                    "prefetches_issued": prefetches_issued,
                    "instructions": instructions,
                    "base_cycles": base_cycles,
                    "base_misses": base_misses,
                    "base_late": base_late,
                    "base_issued": base_issued,
                    "base_instr": base_instr,
                    "base_mispred": base_mispred,
                },
                "scheme": scheme.save_state(),
                "mshr": mshr.save_state(),
                "hierarchy": hierarchy.save_state(),
                "stack": stack.save_state(),
                "prefetcher": prefetcher.save_state(),
            }
            if on_checkpoint is not None and on_checkpoint(state):
                return None

        if i == warmup_end:
            base_cycles = cycles
            base_misses = demand_misses
            base_late = late_prefetch
            base_issued = prefetches_issued
            base_instr = instructions
            base_mispred = stack.stats.mispredicted_transitions

        block = blocks[i]
        n_instr = instr_counts[i]
        instructions += n_instr

        # Resolve and train the transition that led here; charge flushes.
        # Sequential records (the vast majority) retire to nothing.
        if kinds[i] and stack_retire(i):
            cycles += penalty

        # One front-end cycle per fetch record; the backend drains the
        # queue meanwhile.  Overfull queues mean the backend is the
        # bottleneck: charge the extra drain time.
        cycles += 1.0
        queue += n_instr - backend_ipc
        if queue > queue_cap:
            cycles += (queue - queue_cap) / backend_ipc
            queue = queue_cap
        elif queue < 0.0:
            queue = 0.0

        icycles = int(cycles)

        # Prefetch fills that have arrived land in the scheme.
        if next_ready <= cycles:
            for done in mshr_drain(cycles):
                scheme_prefetch_fill(done, i, icycles)
            next_ready = mshr.next_ready

        if not scheme_lookup(block, i, icycles):
            demand_misses += 1
            ready = mshr_ready_cycle(block)
            if ready is not None:
                # Late prefetch: pay only the remaining latency.
                mshr_cancel(block)
                latency = ready - cycles
                if latency < 0.0:
                    latency = 0.0
                late_prefetch += 1
            else:
                latency = float(hierarchy_access(block, i))
            pf_on_demand_miss(block, icycles)
            # The decode-queue backlog hides part of the stall.
            stall = latency - queue / backend_ipc
            if stall > 0.0:
                cycles += stall
            queue -= latency * backend_ipc
            if queue < 0.0:
                queue = 0.0
            icycles = int(cycles)
            scheme_fill(block, i, icycles)
            # The stall advanced ``cycles``: prefetch fills that completed
            # meanwhile must reach the scheme before the candidate loop
            # (the seed model let ``allocate`` silently drop them).
            if next_ready <= cycles:
                for done in mshr_drain(cycles):
                    scheme_prefetch_fill(done, i, icycles)
                next_ready = mshr.next_ready

        pf_observe_fetch(block, icycles)
        for candidate in pf_candidates(i):
            if mshr_contains(candidate) or scheme_contains(candidate):
                continue
            latency = float(hierarchy_access(candidate, i))
            ready = mshr_allocate(candidate, cycles + latency, cycles)
            if ready < next_ready:
                next_ready = ready
            prefetches_issued += 1

    # Schemes that defer counter updates into their fused hot path flush
    # them here (checkpoint captures flush inside save_state instead).
    finish_trace = getattr(scheme, "finish_trace", None)
    if finish_trace is not None:
        finish_trace()

    return RunResult(
        workload=trace.name,
        scheme_name=scheme.name,
        prefetcher_name=prefetcher.name,
        instructions=instructions - base_instr,
        accesses=n - warmup_end,
        cycles=cycles - base_cycles,
        demand_misses=demand_misses - base_misses,
        late_prefetch_misses=late_prefetch - base_late,
        prefetches_issued=prefetches_issued - base_issued,
        mispredicted_transitions=(
            stack.stats.mispredicted_transitions - base_mispred
        ),
        scheme=scheme,
    )


def _simulate_planned(
    trace: Trace,
    scheme: L1IScheme,
    machine: MachineParams,
    hierarchy: Optional[MemoryHierarchy],
    plan: "AnyPlan",
    resume: Optional[dict] = None,
    checkpoint_every: int = 0,
    on_checkpoint=None,
) -> Optional[RunResult]:
    """The planned twin of the live loop in :func:`simulate`.

    Branch flushes come from ``plan.mispredict`` and the prefetch
    candidate stream from ``plan.cand_lo/cand_hi`` spans over
    ``plan.candidate_blocks_list(trace)`` — the trace's own blocks for
    FDP run-ahead, the recorded issue stream for an entangling plan; no
    per-record frontend calls remain.  Any change here must keep the
    scalars bit-identical to the live path
    (``tests/test_frontend_plan.py`` and
    ``tests/test_entangling_plan.py`` pin this across schemes, branch
    kinds and workload profiles).
    """
    n = len(trace)
    if len(plan) != n:
        raise ValueError(
            f"plan covers {len(plan)} records, trace has {n}; "
            "was the plan built for a different trace?"
        )
    warmup_end = int(n * machine.warmup_fraction)
    if warmup_end != plan.warmup_end:
        raise ValueError(
            f"plan warmup split {plan.warmup_end} != machine's {warmup_end}; "
            "rebuild the plan for this machine configuration"
        )
    hierarchy = hierarchy or MemoryHierarchy(machine.hierarchy)
    mshr = MSHRFile(machine.mshr_entries)

    blocks = trace.blocks_list
    instr_counts = trace.instrs_list
    mispredict = plan.mispredict_list
    cand_lo = plan.cand_lo_list
    cand_hi = plan.cand_hi_list
    cand_blocks = plan.candidate_blocks_list(trace)

    backend_ipc = machine.backend_ipc
    queue_cap = float(machine.decode_queue_instrs)
    penalty = machine.branch_mispredict_penalty

    # Shared replacement pre-pass binding, as in the live loop.
    prepare_trace = getattr(scheme, "prepare_trace", None)
    if prepare_trace is not None:
        prepare_trace(trace)

    hierarchy_access = hierarchy.access
    mshr_drain = mshr.drain
    mshr_ready_cycle = mshr.ready_cycle
    mshr_cancel = mshr.cancel
    mshr_allocate = mshr.allocate
    mshr_contains = mshr.__contains__

    cycles = 0.0
    queue = 0.0
    demand_misses = 0
    late_prefetch = 0
    prefetches_issued = 0
    instructions = 0

    base_cycles = 0.0
    base_misses = 0
    base_late = 0
    base_issued = 0
    base_instr = 0

    start = 0
    if resume is not None:
        if resume.get("mode") != "planned":
            raise ValueError(
                f"resume state is {resume.get('mode')!r}, this is a planned run"
            )
        start = resume["next_record"]
        counters = resume["counters"]
        (cycles, queue, demand_misses, late_prefetch, prefetches_issued,
         instructions, base_cycles, base_misses, base_late, base_issued,
         base_instr) = (counters[k] for k in _COUNTER_FIELDS)
        scheme.load_state(resume["scheme"])
        mshr.load_state(resume["mshr"])
        hierarchy.load_state(resume["hierarchy"])
    next_ready = mshr.next_ready

    # Hoisted after the resume load on purpose (see simulate()).
    scheme_lookup = scheme.lookup
    scheme_fill = scheme.fill
    scheme_prefetch_fill = scheme.prefetch_fill
    scheme_contains = scheme.contains

    if checkpoint_every > 0:
        next_ckpt = (start // checkpoint_every + 1) * checkpoint_every
    else:
        next_ckpt = n + 1

    for i in range(start, n):
        if i == next_ckpt:
            next_ckpt += checkpoint_every
            state = {
                "mode": "planned",
                "next_record": i,
                "counters": {
                    "cycles": cycles,
                    "queue": queue,
                    "demand_misses": demand_misses,
                    "late_prefetch": late_prefetch,
                    "prefetches_issued": prefetches_issued,
                    "instructions": instructions,
                    "base_cycles": base_cycles,
                    "base_misses": base_misses,
                    "base_late": base_late,
                    "base_issued": base_issued,
                    "base_instr": base_instr,
                },
                "scheme": scheme.save_state(),
                "mshr": mshr.save_state(),
                "hierarchy": hierarchy.save_state(),
            }
            if on_checkpoint is not None and on_checkpoint(state):
                return None

        if i == warmup_end:
            base_cycles = cycles
            base_misses = demand_misses
            base_late = late_prefetch
            base_issued = prefetches_issued
            base_instr = instructions

        block = blocks[i]
        n_instr = instr_counts[i]
        instructions += n_instr

        if mispredict[i]:
            cycles += penalty

        cycles += 1.0
        queue += n_instr - backend_ipc
        if queue > queue_cap:
            cycles += (queue - queue_cap) / backend_ipc
            queue = queue_cap
        elif queue < 0.0:
            queue = 0.0

        icycles = int(cycles)

        if next_ready <= cycles:
            for done in mshr_drain(cycles):
                scheme_prefetch_fill(done, i, icycles)
            next_ready = mshr.next_ready

        if not scheme_lookup(block, i, icycles):
            demand_misses += 1
            ready = mshr_ready_cycle(block)
            if ready is not None:
                mshr_cancel(block)
                latency = ready - cycles
                if latency < 0.0:
                    latency = 0.0
                late_prefetch += 1
            else:
                latency = float(hierarchy_access(block, i))
            stall = latency - queue / backend_ipc
            if stall > 0.0:
                cycles += stall
            queue -= latency * backend_ipc
            if queue < 0.0:
                queue = 0.0
            icycles = int(cycles)
            scheme_fill(block, i, icycles)
            # Mirror of the live path: surface fills completed during the
            # stall before the candidate loop can re-request their blocks.
            if next_ready <= cycles:
                for done in mshr_drain(cycles):
                    scheme_prefetch_fill(done, i, icycles)
                next_ready = mshr.next_ready

        lo = cand_lo[i]
        hi = cand_hi[i]
        if lo < hi:
            for candidate in cand_blocks[lo:hi]:
                if mshr_contains(candidate) or scheme_contains(candidate):
                    continue
                latency = float(hierarchy_access(candidate, i))
                ready = mshr_allocate(candidate, cycles + latency, cycles)
                if ready < next_ready:
                    next_ready = ready
                prefetches_issued += 1

    # Deferred-counter flush, as in the live loop.
    finish_trace = getattr(scheme, "finish_trace", None)
    if finish_trace is not None:
        finish_trace()

    return RunResult(
        workload=trace.name,
        scheme_name=scheme.name,
        prefetcher_name=plan.prefetcher,
        instructions=instructions - base_instr,
        accesses=n - warmup_end,
        cycles=cycles - base_cycles,
        demand_misses=demand_misses - base_misses,
        late_prefetch_misses=late_prefetch - base_late,
        prefetches_issued=prefetches_issued - base_issued,
        mispredicted_transitions=plan.mispredicted_after_warmup(),
        scheme=scheme,
    )
