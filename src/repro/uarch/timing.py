"""The front-end timing engine.

A fluid-model decoupled front-end (DESIGN.md section 2): fetch delivers
one record per cycle into the decode queue; the backend drains
``backend_ipc`` instructions per cycle; i-cache misses stall fetch for
the hierarchy latency minus what the queue backlog hides; mispredicted
branches flush; prefetchers (FDP run-ahead or entangling) inject fills
through the MSHR file.

The engine is scheme-agnostic: anything implementing the L1I scheme
protocol (``lookup`` / ``fill`` / ``prefetch_fill`` / ``contains``) can
be measured.  Statistics honour the paper's methodology: the first
``warmup_fraction`` of the trace warms all structures and is excluded
from reported numbers (Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

from repro.frontend.stack import BranchStack
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.mshr import MSHRFile
from repro.uarch.params import MachineParams
from repro.workloads.trace import Trace


class L1IScheme(Protocol):
    """The instruction-supply scheme under test."""

    name: str

    def lookup(self, block: int, t: int, cycle: int) -> bool: ...

    def fill(self, block: int, t: int, cycle: int) -> None: ...

    def prefetch_fill(self, block: int, t: int, cycle: int) -> None: ...

    def contains(self, block: int) -> bool: ...


class Prefetcher(Protocol):
    """Prefetch engine driving fills through the MSHRs."""

    name: str

    def candidates(self, i: int) -> list: ...

    def observe_fetch(self, block: int, cycle: int) -> None: ...

    def on_demand_miss(self, block: int, cycle: int) -> None: ...


@dataclass
class RunResult:
    """Post-warmup measurements of one (trace, scheme, prefetcher) run."""

    workload: str
    scheme_name: str
    prefetcher_name: str
    instructions: int = 0
    accesses: int = 0
    cycles: float = 0.0
    demand_misses: int = 0
    late_prefetch_misses: int = 0
    prefetches_issued: int = 0
    mispredicted_transitions: int = 0
    scheme: Optional[object] = field(default=None, repr=False)

    @property
    def mpki(self) -> float:
        """L1i demand misses per 1000 instructions."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.demand_misses / self.instructions

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def miss_ratio(self) -> float:
        return self.demand_misses / self.accesses if self.accesses else 0.0

    def speedup_over(self, baseline: "RunResult") -> float:
        """Execution-time speedup of *this* run relative to ``baseline``."""
        if self.cycles == 0:
            raise ValueError("run has no cycles; was the trace empty?")
        return baseline.cycles / self.cycles

    def mpki_reduction_over(self, baseline: "RunResult") -> float:
        """MPKI reduction (%) relative to ``baseline`` (positive = fewer)."""
        if baseline.mpki == 0:
            return 0.0
        return 100.0 * (baseline.mpki - self.mpki) / baseline.mpki


def simulate(
    trace: Trace,
    scheme: L1IScheme,
    prefetcher: Prefetcher,
    stack: BranchStack,
    machine: MachineParams,
    hierarchy: Optional[MemoryHierarchy] = None,
) -> RunResult:
    """Run ``scheme`` over ``trace`` and return post-warmup measurements."""
    hierarchy = hierarchy or MemoryHierarchy(machine.hierarchy)
    mshr = MSHRFile(machine.mshr_entries)

    blocks = trace.blocks
    instr_counts = trace.instrs
    n = len(trace)
    warmup_end = int(n * machine.warmup_fraction)

    backend_ipc = machine.backend_ipc
    queue_cap = float(machine.decode_queue_instrs)
    penalty = machine.branch_mispredict_penalty

    cycles = 0.0
    queue = 0.0
    demand_misses = 0
    late_prefetch = 0
    prefetches_issued = 0
    instructions = 0

    # Snapshots taken when warmup ends.
    base_cycles = 0.0
    base_misses = 0
    base_late = 0
    base_issued = 0
    base_instr = 0
    base_mispred = 0

    for i in range(n):
        if i == warmup_end:
            base_cycles = cycles
            base_misses = demand_misses
            base_late = late_prefetch
            base_issued = prefetches_issued
            base_instr = instructions
            base_mispred = stack.stats.mispredicted_transitions

        block = int(blocks[i])
        n_instr = int(instr_counts[i])
        instructions += n_instr

        # Resolve and train the transition that led here; charge flushes.
        if stack.retire(i):
            cycles += penalty

        # One front-end cycle per fetch record; the backend drains the
        # queue meanwhile.  Overfull queues mean the backend is the
        # bottleneck: charge the extra drain time.
        cycles += 1.0
        queue += n_instr - backend_ipc
        if queue > queue_cap:
            cycles += (queue - queue_cap) / backend_ipc
            queue = queue_cap
        elif queue < 0.0:
            queue = 0.0

        # Prefetch fills that have arrived land in the scheme.
        if len(mshr):
            for done in mshr.drain(cycles):
                scheme.prefetch_fill(done, i, int(cycles))

        hit = scheme.lookup(block, i, int(cycles))
        if not hit:
            demand_misses += 1
            ready = mshr.ready_cycle(block)
            if ready is not None:
                # Late prefetch: pay only the remaining latency.
                mshr.cancel(block)
                latency = max(0.0, ready - cycles)
                late_prefetch += 1
            else:
                latency = float(hierarchy.access(block, i))
            prefetcher.on_demand_miss(block, int(cycles))
            # The decode-queue backlog hides part of the stall.
            stall = latency - queue / backend_ipc
            if stall > 0.0:
                cycles += stall
            queue = max(0.0, queue - latency * backend_ipc)
            scheme.fill(block, i, int(cycles))

        prefetcher.observe_fetch(block, int(cycles))
        for candidate in prefetcher.candidates(i):
            if candidate in mshr or scheme.contains(candidate):
                continue
            latency = float(hierarchy.access(candidate, i))
            mshr.allocate(candidate, cycles + latency, cycles)
            prefetches_issued += 1

    return RunResult(
        workload=trace.name,
        scheme_name=scheme.name,
        prefetcher_name=prefetcher.name,
        instructions=instructions - base_instr,
        accesses=n - warmup_end,
        cycles=cycles - base_cycles,
        demand_misses=demand_misses - base_misses,
        late_prefetch_misses=late_prefetch - base_late,
        prefetches_issued=prefetches_issued - base_issued,
        mispredicted_transitions=(
            stack.stats.mispredicted_transitions - base_mispred
        ),
        scheme=scheme,
    )
