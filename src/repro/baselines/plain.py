"""Plain replacement-policy schemes: the L1i driven by one policy.

Covers the baseline (LRU), the replacement-policy competitors (SRRIP,
SHiP, Hawkeye/Harmony, GHRP), the oracle (Belady OPT), and the "just
buy more SRAM" comparison points (36 KB / 40 KB i-caches).
"""

from __future__ import annotations

from typing import Optional

from repro.mem.cache import CacheConfig, SetAssociativeCache
from repro.mem.policies.base import ReplacementPolicy


class PlainCacheScheme:
    """An L1i whose behaviour is entirely its replacement policy's."""

    def __init__(
        self,
        config: CacheConfig,
        policy: ReplacementPolicy,
        name: Optional[str] = None,
    ) -> None:
        self.config = config
        self.icache = SetAssociativeCache(config, policy)
        self.name = name or policy.name

    def lookup(self, block: int, t: int, cycle: int) -> bool:
        return self.icache.lookup(block, t)

    def fill(self, block: int, t: int, cycle: int) -> None:
        self.icache.fill(block, t)

    def prefetch_fill(self, block: int, t: int, cycle: int) -> None:
        self.icache.fill(block, t, prefetch=True)

    def contains(self, block: int) -> bool:
        return self.icache.contains(block)

    def reset(self) -> None:
        self.icache.reset()

    # -- checkpoint/resume --------------------------------------------------

    def save_state(self) -> dict:
        return {"icache": self.icache.save_state()}

    def load_state(self, state: dict) -> None:
        self.icache.load_state(state["icache"])
