"""Bypassing-policy baselines (Sections III, IV-E; Table IV).

* :class:`AccessCountBypassScheme` — Johnson et al.'s run-time cache
  bypassing applied to the i-Filter victim: compare access counters of
  the victim and its contender (Figure 3a's middle bar).
* :class:`OPTBypassScheme` — oracle admission: insert the i-Filter
  victim only when its true next use beats the contender's.
* :class:`RandomBypassScheme` — makes the oracle-correct decision with
  a fixed probability (Figure 12b's 60 %-accuracy strawman).
* :class:`DSBScheme` — dueling segmented LRU with adaptive bypassing:
  bypass fills with a probability tuned by observed outcomes; tracks
  one (bypassed, retained) pair per set.
* :class:`OBMScheme` — optimal bypass monitor: sampled incoming/victim
  pairs train a signature-indexed bypass-decision counter table.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.common.bitops import fold_hash, mask
from repro.core.ifilter import IFilter
from repro.mem.cache import CacheConfig, SetAssociativeCache
from repro.mem.oracle import NextUseOracle
from repro.mem.policies.lru import LRUPolicy


class IFilterAdmissionBase:
    """Shared skeleton: LRU i-cache + i-Filter + an admission hook.

    Subclasses override :meth:`admit` (and optionally the resolution
    hooks) to implement their policy.  This mirrors ACIC's datapath with
    the predictor swapped out, which is exactly how the paper frames
    the comparison.
    """

    name = "ifilter-base"

    def __init__(self, config: CacheConfig, ifilter_slots: int = 16) -> None:
        self.config = config
        self.icache = SetAssociativeCache(config, LRUPolicy())
        self.ifilter = IFilter(ifilter_slots)
        self.victims_considered = 0
        self.victims_admitted = 0

    # -- admission hook ---------------------------------------------------------

    def admit(self, victim: int, contender: int, t: int, cycle: int) -> bool:
        raise NotImplementedError

    def on_access(self, block: int, t: int, cycle: int) -> None:
        """Per-fetch bookkeeping hook (access counters, pair resolution)."""

    # -- L1I scheme protocol -------------------------------------------------------

    def lookup(self, block: int, t: int, cycle: int) -> bool:
        self.on_access(block, t, cycle)
        if self.ifilter.lookup(block):
            return True
        return self.icache.lookup(block, t)

    def _handle_victim(self, victim: int, t: int, cycle: int) -> None:
        contender = self.icache.lru_contender(victim)
        if contender is None:
            self.icache.fill(victim, t)
            return
        self.victims_considered += 1
        if self.admit(victim, contender, t, cycle):
            self.victims_admitted += 1
            self.icache.fill(victim, t)

    def _fill(self, block: int, t: int, cycle: int) -> None:
        victim = self.ifilter.fill(block)
        if victim is not None:
            self._handle_victim(victim, t, cycle)

    def fill(self, block: int, t: int, cycle: int) -> None:
        self._fill(block, t, cycle)

    def prefetch_fill(self, block: int, t: int, cycle: int) -> None:
        self._fill(block, t, cycle)

    def contains(self, block: int) -> bool:
        return block in self.ifilter or self.icache.contains(block)

    def reset(self) -> None:
        self.icache.reset()
        self.ifilter.reset()
        self.victims_considered = 0
        self.victims_admitted = 0

    # -- checkpoint/resume --------------------------------------------------
    #
    # Subclasses list extra mutable attrs in ``_STATE_ATTRS``; schemes
    # with an RNG or an external oracle override/extend these hooks.

    _STATE_ATTRS: tuple = ()

    def save_state(self) -> dict:
        from repro.common.state import save_attrs

        state = save_attrs(self, self._STATE_ATTRS)
        state["icache"] = self.icache.save_state()
        state["ifilter"] = self.ifilter.save_state()
        state["victims_considered"] = self.victims_considered
        state["victims_admitted"] = self.victims_admitted
        return state

    def load_state(self, state: dict) -> None:
        from repro.common.state import load_attrs

        load_attrs(self, state, self._STATE_ATTRS)
        self.icache.load_state(state["icache"])
        self.ifilter.load_state(state["ifilter"])
        self.victims_considered = state["victims_considered"]
        self.victims_admitted = state["victims_admitted"]


class AlwaysInsertScheme(IFilterAdmissionBase):
    """i-Filter victims always enter the i-cache (Figure 3a, first bar)."""

    name = "ifilter-always"

    def admit(self, victim: int, contender: int, t: int, cycle: int) -> bool:
        return True


class AccessCountBypassScheme(IFilterAdmissionBase):
    """Access-counter comparison (Johnson et al. [37], Figure 3a).

    A hashed table of saturating counters tracks per-block access
    frequency (a memory access table); the i-Filter victim is admitted
    only when it has been accessed at least as often as its contender.
    Counters decay periodically so stale blocks do not look hot forever.
    """

    name = "access-count"

    def __init__(
        self,
        config: CacheConfig,
        ifilter_slots: int = 16,
        table_bits: int = 12,
        counter_bits: int = 4,
        decay_interval: int = 8192,
    ) -> None:
        super().__init__(config, ifilter_slots)
        self.table_bits = table_bits
        self.counter_max = mask(counter_bits)
        self.decay_interval = decay_interval
        self.table = [0] * (1 << table_bits)
        self._accesses = 0
        self._last_block = -1

    def _count_of(self, block: int) -> int:
        return self.table[fold_hash(block, self.table_bits)]

    def on_access(self, block: int, t: int, cycle: int) -> None:
        if block == self._last_block:
            return  # count block visits, not same-block fetch groups
        self._last_block = block
        idx = fold_hash(block, self.table_bits)
        if self.table[idx] < self.counter_max:
            self.table[idx] += 1
        self._accesses += 1
        if self._accesses % self.decay_interval == 0:
            self.table = [v >> 1 for v in self.table]

    def admit(self, victim: int, contender: int, t: int, cycle: int) -> bool:
        return self._count_of(victim) >= self._count_of(contender)

    _STATE_ATTRS = ("table", "_accesses", "_last_block")


class OPTBypassScheme(IFilterAdmissionBase):
    """Oracle admission (Table IV's "OPT bypass with i-Filter")."""

    name = "opt-bypass"

    def __init__(
        self, config: CacheConfig, oracle: NextUseOracle, ifilter_slots: int = 16
    ) -> None:
        super().__init__(config, ifilter_slots)
        self.oracle = oracle

    def admit(self, victim: int, contender: int, t: int, cycle: int) -> bool:
        return self.oracle.next_use_of(victim, t) < self.oracle.next_use_of(
            contender, t
        )


class RandomBypassScheme(IFilterAdmissionBase):
    """Oracle-correct with probability ``accuracy`` (Figure 12b).

    Shows that raw decision accuracy is a misleading metric: 60 %
    uniformly-random accuracy captures less than half of ACIC's MPKI
    reduction, because ACIC is accurate *where it matters*.
    """

    name = "random-bypass"

    def __init__(
        self,
        config: CacheConfig,
        oracle: NextUseOracle,
        accuracy: float = 0.6,
        seed: int = 0,
        ifilter_slots: int = 16,
    ) -> None:
        super().__init__(config, ifilter_slots)
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be a probability, got {accuracy}")
        self.oracle = oracle
        self.accuracy = accuracy
        self._rng = random.Random(seed)

    def admit(self, victim: int, contender: int, t: int, cycle: int) -> bool:
        truth = self.oracle.next_use_of(victim, t) < self.oracle.next_use_of(
            contender, t
        )
        if self._rng.random() < self.accuracy:
            return truth
        return not truth

    # The oracle is externally owned; only the RNG stream is state.

    def save_state(self) -> dict:
        state = super().save_state()
        state["rng"] = self._rng.getstate()
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self._rng.setstate(state["rng"])


class DSBScheme:
    """Dueling Segmented LRU with adaptive bypassing (Gao & Wilkerson).

    Incoming blocks bypass the cache with a probability chosen from a
    power-of-two ladder.  One (bypassed, retained-victim) pair per set
    duels: if the bypassed block returns first, bypassing hurt (lower
    the probability); if the retained victim is touched first, bypassing
    was right (raise it).  ``with_ifilter=True`` reproduces the paper's
    "DSB + i-Filter" variant by applying the same choice to i-Filter
    victims instead of raw misses.
    """

    #: Bypass probability ladder, most to least aggressive.
    LADDER = (1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125, 0.0)

    def __init__(
        self,
        config: CacheConfig,
        seed: int = 0,
        with_ifilter: bool = False,
        ifilter_slots: int = 16,
    ) -> None:
        self.config = config
        self.icache = SetAssociativeCache(config, LRUPolicy())
        self.ifilter = IFilter(ifilter_slots) if with_ifilter else None
        self.name = "dsb+ifilter" if with_ifilter else "dsb"
        self._rng = random.Random(seed)
        self._ladder_index = 3  # start mid-ladder
        # Per-set duel: set_index -> (bypassed_block, retained_block).
        self._duels: Dict[int, Tuple[int, int]] = {}

    @property
    def bypass_probability(self) -> float:
        return self.LADDER[self._ladder_index]

    def _resolve_duels(self, block: int) -> None:
        set_index = self.icache.set_index(block)
        duel = self._duels.get(set_index)
        if duel is None:
            return
        bypassed, retained = duel
        if block == bypassed:
            # The bypassed block came back: bypassing was a mistake.
            if self._ladder_index < len(self.LADDER) - 1:
                self._ladder_index += 1
            del self._duels[set_index]
        elif block == retained:
            # The retained line proved useful: bypassing was right.
            if self._ladder_index > 0:
                self._ladder_index -= 1
            del self._duels[set_index]

    def _decide_fill(self, block: int, t: int) -> None:
        contender = self.icache.lru_contender(block)
        if contender is None:
            self.icache.fill(block, t)
            return
        if self._rng.random() < self.bypass_probability:
            # Bypass: the contender stays; open a duel for this set.
            self._duels.setdefault(
                self.icache.set_index(block), (block, contender)
            )
        else:
            self.icache.fill(block, t)

    def lookup(self, block: int, t: int, cycle: int) -> bool:
        self._resolve_duels(block)
        if self.ifilter is not None and self.ifilter.lookup(block):
            return True
        return self.icache.lookup(block, t)

    def _fill(self, block: int, t: int) -> None:
        if self.ifilter is None:
            self._decide_fill(block, t)
            return
        victim = self.ifilter.fill(block)
        if victim is not None:
            self._decide_fill(victim, t)

    def fill(self, block: int, t: int, cycle: int) -> None:
        self._fill(block, t)

    def prefetch_fill(self, block: int, t: int, cycle: int) -> None:
        self._fill(block, t)

    def contains(self, block: int) -> bool:
        if self.ifilter is not None and block in self.ifilter:
            return True
        return self.icache.contains(block)

    def reset(self) -> None:
        self.icache.reset()
        if self.ifilter is not None:
            self.ifilter.reset()
        self._duels.clear()
        self._ladder_index = 3

    # -- checkpoint/resume --------------------------------------------------

    def save_state(self) -> dict:
        from repro.common.state import snapshot

        state = {
            "icache": self.icache.save_state(),
            "rng": self._rng.getstate(),
            "ladder_index": self._ladder_index,
            "duels": snapshot(self._duels),
        }
        if self.ifilter is not None:
            state["ifilter"] = self.ifilter.save_state()
        return state

    def load_state(self, state: dict) -> None:
        from repro.common.state import load_dict_inplace

        self.icache.load_state(state["icache"])
        self._rng.setstate(state["rng"])
        self._ladder_index = state["ladder_index"]
        load_dict_inplace(self._duels, state["duels"])
        if self.ifilter is not None:
            self.ifilter.load_state(state["ifilter"])


class OBMScheme:
    """Optimal Bypass Monitor (Li et al., PACT'12).

    Samples (incoming, would-be-victim) pairs into a small Replacement
    History Table; whichever is re-fetched first trains a Bypass
    Decision Counter Table indexed by the incoming block's signature.
    Fills whose signature counter favours the victim are bypassed.
    The sparse sampling (vs. ACIC's 256-entry CSHR watching *every*
    i-Filter victim) is what limits it on the instruction stream.
    """

    name = "obm"

    def __init__(
        self,
        config: CacheConfig,
        rht_entries: int = 128,
        bdct_bits: int = 10,
        counter_bits: int = 4,
        sample_period: int = 8,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.icache = SetAssociativeCache(config, LRUPolicy())
        self.bdct_bits = bdct_bits
        self.counter_max = mask(counter_bits)
        self.threshold = (self.counter_max + 1) // 2
        self.bdct = [self.threshold] * (1 << bdct_bits)
        self.rht_entries = rht_entries
        self.sample_period = sample_period
        self._rng = random.Random(seed)
        # RHT: block -> ("incoming"/"victim" role marker, signature).
        self._rht: Dict[int, Tuple[bool, int]] = {}
        self._fills = 0

    def _signature(self, block: int) -> int:
        return fold_hash(block, self.bdct_bits)

    def _resolve(self, block: int) -> None:
        entry = self._rht.pop(block, None)
        if entry is None:
            return
        was_incoming, signature = entry
        value = self.bdct[signature]
        if was_incoming:
            # The incoming block returned first: inserting it is right.
            if value < self.counter_max:
                self.bdct[signature] = value + 1
        elif value > 0:
            self.bdct[signature] = value - 1

    def lookup(self, block: int, t: int, cycle: int) -> bool:
        if self._rht:
            self._resolve(block)
        return self.icache.lookup(block, t)

    def _fill(self, block: int, t: int) -> None:
        contender = self.icache.lru_contender(block)
        signature = self._signature(block)
        if contender is None:
            self.icache.fill(block, t)
            return
        insert = self.bdct[signature] >= self.threshold
        self._fills += 1
        if self._fills % self.sample_period == 0 and len(self._rht) < 2 * self.rht_entries:
            # Sample this pair for training (both directions).
            if len(self._rht) >= 2 * self.rht_entries - 1:
                # Drop the oldest entries (insertion order).
                for stale in list(self._rht)[:2]:
                    del self._rht[stale]
            self._rht[block] = (True, signature)
            self._rht[contender] = (False, signature)
        if insert:
            self.icache.fill(block, t)

    def fill(self, block: int, t: int, cycle: int) -> None:
        self._fill(block, t)

    def prefetch_fill(self, block: int, t: int, cycle: int) -> None:
        self._fill(block, t)

    def contains(self, block: int) -> bool:
        return self.icache.contains(block)

    def reset(self) -> None:
        self.icache.reset()
        self.bdct = [self.threshold] * len(self.bdct)
        self._rht.clear()
        self._fills = 0

    # -- checkpoint/resume --------------------------------------------------

    def save_state(self) -> dict:
        from repro.common.state import save_attrs

        state = save_attrs(self, ("bdct", "_rht", "_fills"))
        state["icache"] = self.icache.save_state()
        state["rng"] = self._rng.getstate()
        return state

    def load_state(self, state: dict) -> None:
        from repro.common.state import load_attrs

        # _rht insertion order doubles as eviction order; the deepcopy in
        # load_attrs preserves it.
        load_attrs(self, state, ("bdct", "_rht", "_fills"))
        self.icache.load_state(state["icache"])
        self._rng.setstate(state["rng"])
