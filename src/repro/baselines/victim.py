"""Victim-cache schemes: VC3K and the Virtual Victim Cache (Section IV-F).

VC3K parks L1i evictions in a dedicated 3 KB fully-associative buffer;
VVC parks them in predicted-dead lines of *other* L1i sets.  Both probe
their victim store on an L1i miss and swap the block back on a hit.
"""

from __future__ import annotations

from repro.mem.cache import CacheConfig, SetAssociativeCache
from repro.mem.policies.lru import LRUPolicy
from repro.mem.victim import VictimCache
from repro.mem.vvc import DeadBlockPredictor, VirtualVictimCache


class VictimCacheScheme:
    """LRU L1i + traditional fully-associative victim cache (VC3K)."""

    def __init__(self, config: CacheConfig, victim_bytes: int = 3 * 1024) -> None:
        self.config = config
        self.icache = SetAssociativeCache(config, LRUPolicy())
        self.victim_cache = VictimCache(victim_bytes)
        self.name = f"vc{victim_bytes // 1024}k"

    def lookup(self, block: int, t: int, cycle: int) -> bool:
        if self.icache.lookup(block, t):
            return True
        if self.victim_cache.probe(block):
            # Swap back: the block returns to L1i; the L1i victim parks.
            result = self.icache.fill(block, t)
            if result.evicted is not None:
                self.victim_cache.insert(result.evicted)
            return True
        return False

    def fill(self, block: int, t: int, cycle: int) -> None:
        result = self.icache.fill(block, t)
        if result.evicted is not None:
            self.victim_cache.insert(result.evicted)

    def prefetch_fill(self, block: int, t: int, cycle: int) -> None:
        result = self.icache.fill(block, t, prefetch=True)
        if result.evicted is not None:
            self.victim_cache.insert(result.evicted)

    def contains(self, block: int) -> bool:
        return self.icache.contains(block) or block in self.victim_cache

    def reset(self) -> None:
        self.icache.reset()
        self.victim_cache.reset()

    # -- checkpoint/resume --------------------------------------------------

    def save_state(self) -> dict:
        return {
            "icache": self.icache.save_state(),
            "victim_cache": self.victim_cache.save_state(),
        }

    def load_state(self, state: dict) -> None:
        self.icache.load_state(state["icache"])
        self.victim_cache.load_state(state["victim_cache"])


class VVCScheme:
    """LRU L1i using predicted-dead lines as a virtual victim cache.

    The paper finds this *hurts* the instruction stream (most parked
    victims out-live their usefulness while displacing live lines); the
    mechanism is reproduced faithfully so that result can emerge.
    """

    name = "vvc"

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.icache = SetAssociativeCache(config, LRUPolicy())
        self.vvc = VirtualVictimCache(self.icache, DeadBlockPredictor())

    def lookup(self, block: int, t: int, cycle: int) -> bool:
        self.vvc.predictor.on_access(block)
        if self.icache.lookup(block, t):
            return True
        if self.vvc.probe_virtual(block):
            result = self.vvc.promote(block, t)
            self._handle_eviction(result.evicted, t)
            return True
        return False

    def _handle_eviction(self, victim, t: int) -> None:
        if victim is None:
            return
        self.vvc.predictor.on_evict(victim)
        if self.vvc.is_parked(victim):
            self.vvc.forget(victim)  # a parked block died naturally
        else:
            home_set = self.icache.set_index(victim)
            self.vvc.park_victim(victim, home_set, t)

    def _fill(self, block: int, t: int, prefetch: bool) -> None:
        result = self.icache.fill(block, t, prefetch=prefetch)
        self._handle_eviction(result.evicted, t)

    def fill(self, block: int, t: int, cycle: int) -> None:
        self._fill(block, t, prefetch=False)

    def prefetch_fill(self, block: int, t: int, cycle: int) -> None:
        self._fill(block, t, prefetch=True)

    def contains(self, block: int) -> bool:
        return self.icache.contains(block) or self.vvc.is_parked(block)

    def reset(self) -> None:
        self.icache.reset()
        self.vvc.reset()

    # -- checkpoint/resume --------------------------------------------------

    def save_state(self) -> dict:
        return {
            "icache": self.icache.save_state(),
            "vvc": self.vvc.save_state(),
        }

    def load_state(self, state: dict) -> None:
        self.icache.load_state(state["icache"])
        self.vvc.load_state(state["vvc"])
