"""Figure 1b: Markov chain over reuse-distance buckets.

Each state is a Figure 1a bucket; the transition probability from state
``a`` to ``b`` is how often a block whose last reuse distance fell in
``a`` next reuses at a distance in ``b``.  Heavy self-transitions in
the smallest states are the paper's evidence of burstiness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.analysis.reuse import successive_distance_pairs

#: State labels matching Figure 1a/1b.
MARKOV_STATES = ("0", "1-16", "16-512", "512-1024", "1024-10000", ">10000")

#: Stack-distance edges separating the states.
MARKOV_EDGES = (1, 17, 513, 1025, 10001)


@dataclass
class ReuseMarkovChain:
    """Transition structure of successive reuse distances."""

    workload: str
    counts: np.ndarray      # (n_states, n_states) transition counts
    states: Sequence[str] = MARKOV_STATES

    def transition_matrix(self) -> np.ndarray:
        """Row-normalised probabilities (rows with no mass stay zero)."""
        counts = self.counts.astype(float)
        row_sums = counts.sum(axis=1, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            probs = np.where(row_sums > 0, counts / row_sums, 0.0)
        return probs

    def self_transition(self, state: str) -> float:
        idx = list(self.states).index(state)
        return float(self.transition_matrix()[idx, idx])

    def burstiness_score(self) -> float:
        """Probability mass flowing into the two shortest-distance states.

        The paper's reading of Figure 1b: transitions into state "0"
        (and "1-16") dominate from everywhere — once referenced, a block
        keeps being referenced.
        """
        probs = self.transition_matrix()
        weights = self.counts.sum(axis=1).astype(float)
        if weights.sum() == 0:
            return 0.0
        into_short = probs[:, 0] + probs[:, 1]
        return float((into_short * weights).sum() / weights.sum())

    def format(self) -> str:
        """Plain-text rendering of the transition matrix."""
        probs = self.transition_matrix()
        width = max(len(s) for s in self.states) + 2
        lines = [
            f"Markov chain of reuse distances — {self.workload}",
            " " * width + "".join(s.rjust(width) for s in self.states),
        ]
        for i, state in enumerate(self.states):
            row = "".join(f"{probs[i, j]:>{width}.3f}" for j in range(len(self.states)))
            lines.append(state.rjust(width) + row)
        return "\n".join(lines)


def reuse_markov_chain(blocks, workload: str = "trace") -> ReuseMarkovChain:
    """Build the Figure 1b chain for a block-access sequence."""
    counts = successive_distance_pairs(blocks, edges=MARKOV_EDGES)
    return ReuseMarkovChain(workload=workload, counts=counts)
