"""Offline analyses: reuse distances, Markov chains, storage, energy."""

from repro.analysis.comparisons import (
    CSHRLifetimeDistribution,
    DeltaHistogram,
    cshr_lifetime_distribution,
    ifilter_insertion_deltas,
)
from repro.analysis.energy import (
    EnergyBreakdown,
    EnergyParams,
    acic_energy_saving_percent,
    run_energy,
)
from repro.analysis.markov import ReuseMarkovChain, reuse_markov_chain
from repro.analysis.reuse import (
    FIG1A_BUCKETS,
    ReuseHistogram,
    reuse_histogram,
    stack_distances,
)
from repro.analysis.storage import (
    ACICStorageConfig,
    PAPER_STORAGE_KB,
    acic_storage_bits,
    acic_storage_kb,
    scheme_storage_kb,
)

__all__ = [
    "CSHRLifetimeDistribution",
    "DeltaHistogram",
    "cshr_lifetime_distribution",
    "ifilter_insertion_deltas",
    "EnergyBreakdown",
    "EnergyParams",
    "acic_energy_saving_percent",
    "run_energy",
    "ReuseMarkovChain",
    "reuse_markov_chain",
    "FIG1A_BUCKETS",
    "ReuseHistogram",
    "reuse_histogram",
    "stack_distances",
    "ACICStorageConfig",
    "PAPER_STORAGE_KB",
    "acic_storage_bits",
    "acic_storage_kb",
    "scheme_storage_kb",
]
