"""Hardware storage accounting — Table I and Table IV.

Every scheme's extra state is computed from first principles (bits per
entry x entries), matching the paper's arithmetic exactly:

* ACIC: i-Filter 16 x (63 metadata bits + 64 B block) = 1.123 KB;
  HRT 1024 x 4 b = 0.5 KB; PT 16 x 5 b = 10 B; PT update queues
  16 x 10 x 5 b = 100 B; CSHR 256 x 30 b = 0.9375 KB; total 2.67 KB.
* GHRP 4.06 KB, SHiP 2.88 KB, Hawkeye/Harmony 4.69 KB, SRRIP 0.125 KB,
  DSB 0.48 KB, OBM 1.41 KB, VVC 9.06 KB, VC3K 3 KB + tags, 36KB-L1i
  + 4 KB SRAM (Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.bitops import BLOCK_BYTES

KB = 1024  # bytes


@dataclass(frozen=True)
class ACICStorageConfig:
    """The knobs that determine ACIC's storage bill (Table I defaults)."""

    ifilter_slots: int = 16
    ifilter_tag_bits: int = 58
    ifilter_lru_bits: int = 4
    hrt_entries: int = 1024
    history_bits: int = 4
    pt_counter_bits: int = 5
    pt_queue_slots: int = 10
    cshr_entries: int = 256
    cshr_tag_bits: int = 12
    cshr_lru_bits: int = 5
    block_bytes: int = BLOCK_BYTES


def acic_storage_bits(config: ACICStorageConfig | None = None) -> Dict[str, int]:
    """Bits per ACIC component (Table I rows)."""
    c = config or ACICStorageConfig()
    ifilter_meta = c.ifilter_tag_bits + 1 + c.ifilter_lru_bits  # tag+valid+LRU
    pt_entries = 1 << c.history_bits
    pt_index_bits = c.history_bits
    return {
        "i-Filter": c.ifilter_slots * (ifilter_meta + 8 * c.block_bytes),
        "HRT": c.hrt_entries * c.history_bits,
        "PT": pt_entries * c.pt_counter_bits,
        "PT update queues": pt_entries * c.pt_queue_slots * (pt_index_bits + 1),
        "CSHR": c.cshr_entries * (2 * c.cshr_tag_bits + 1 + c.cshr_lru_bits),
    }


def acic_storage_kb(config: ACICStorageConfig | None = None) -> float:
    """Total ACIC storage in KB (paper: 2.67 KB)."""
    return sum(acic_storage_bits(config).values()) / 8 / KB


def _bits_to_kb(bits: int) -> float:
    return bits / 8 / KB


def scheme_storage_kb() -> Dict[str, float]:
    """Extra storage of every Table IV scheme, in KB.

    Derivations follow each row's "Important Parameters" column.
    """
    srrip = 512 * 2  # 512 lines x 2-bit RRPV
    ship = 512 * (2 + 14 + 1) + (1 << 13) * 2  # line rrpv+sig+outcome, SHCT
    hawkeye = 64 * 64 + (1 << 13) * 3 + 512 * 3 + 512 * 13  # OPTgen vectors,
    # predictor counters, per-line RRIP + signature
    ghrp = 3 * 4096 * 2 + 512 * (16 + 1) + 16  # 3 tables, line sig+pred, GHR
    dsb = 512 * 8  # tracked-line tag + competitor way per set x 64 sets, probs
    obm = 128 * (21 + 21) + 1024 * 4 + 128 * 10  # RHT pairs, BDCT, signatures
    vvc = 512 * 15 + 2 * (1 << 14) * 2 + 512 * 1  # traces, 2 tables, dead bits
    vc3k = 48 * (8 * 64 + 58 + 1 + 6)  # 48 blocks + tag/valid/LRU
    larger_36k = 4 * KB * 8  # 4 KB of extra SRAM (data only, as the paper)
    return {
        "SRRIP": _bits_to_kb(srrip),
        "SHiP": _bits_to_kb(ship),
        "Hawkeye/Harmony": _bits_to_kb(hawkeye),
        "GHRP": _bits_to_kb(ghrp),
        "DSB": _bits_to_kb(dsb),
        "OBM": _bits_to_kb(obm),
        "VVC": _bits_to_kb(vvc),
        "VC3K": _bits_to_kb(vc3k),
        "36KB L1i": _bits_to_kb(larger_36k),
        "OPT": 0.0,
        "OPT bypass + i-Filter": _bits_to_kb(
            acic_storage_bits()["i-Filter"]
        ),
        "ACIC": acic_storage_kb(),
    }


#: The paper's Table IV storage numbers (KB), for paper-vs-measured rows.
PAPER_STORAGE_KB = {
    "SRRIP": 0.125,
    "SHiP": 2.88,
    "Hawkeye/Harmony": 4.69,
    "GHRP": 4.06,
    "DSB": 0.48,
    "OBM": 1.41,
    "VVC": 9.06,
    "VC3K": 8.0,   # Table IV lists the 8 KB VC8K victim-cache variant
    "36KB L1i": 8.0,  # Table IV's 40KB row: 8 KB over baseline
    "OPT": 0.0,
    "OPT bypass + i-Filter": 1.123,
    "ACIC": 2.67,
}
