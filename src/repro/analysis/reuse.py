"""Reuse-distance (stack-distance) analysis — Figure 1a.

The paper defines reuse distance as the LRU stack distance: the number
of *unique* instruction blocks accessed between two successive accesses
to the same block.  We compute it exactly with the classic Fenwick-tree
algorithm: maintain one marker per block at its last access position;
the stack distance of a re-access is the number of markers strictly
between the previous and current positions.

Figure 1a buckets: 0 (spatial / same block), [1, 16] (short temporal),
(16, 512] (within i-cache reach), (512, 1024] (just beyond), and
(1024, 10000] (far).  Distances above 10000 and cold misses are
reported separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

#: The paper's Figure 1a bucket labels, in order.
FIG1A_BUCKETS = ("0", "1-16", "16-512", "512-1024", "1024-10000")


class _Fenwick:
    """Binary indexed tree over trace positions (1-based)."""

    __slots__ = ("size", "tree")

    def __init__(self, size: int) -> None:
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self.size:
            self.tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of markers at positions [0, i]."""
        i += 1
        total = 0
        while i > 0:
            total += self.tree[i]
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of markers at positions [lo, hi]."""
        if hi < lo:
            return 0
        return self.prefix(hi) - (self.prefix(lo - 1) if lo > 0 else 0)


def stack_distances(blocks: Sequence[int]) -> np.ndarray:
    """Exact LRU stack distance per access; -1 marks cold (first) accesses."""
    blocks_arr = np.asarray(blocks, dtype=np.int64)
    n = len(blocks_arr)
    out = np.full(n, -1, dtype=np.int64)
    tree = _Fenwick(n)
    last_pos: Dict[int, int] = {}
    for i, block in enumerate(blocks_arr.tolist()):
        prev = last_pos.get(block)
        if prev is not None:
            # Unique blocks touched strictly between prev and i:
            # markers live at each block's last-access position.
            out[i] = tree.range_sum(prev + 1, i - 1)
            tree.add(prev, -1)
        tree.add(i, 1)
        last_pos[block] = i
    return out


@dataclass
class ReuseHistogram:
    """Bucketed stack-distance distribution (Figure 1a row)."""

    workload: str
    counts: Dict[str, int]
    beyond: int
    cold: int

    @property
    def total_reuses(self) -> int:
        return sum(self.counts.values()) + self.beyond

    def percentages(self) -> Dict[str, float]:
        total = self.total_reuses
        if total == 0:
            return {label: 0.0 for label in self.counts}
        return {
            label: 100.0 * count / total for label, count in self.counts.items()
        }

    def intermediate_share(self) -> float:
        """Mass just beyond i-cache reach, (512, 1024] — ACIC's target."""
        return self.percentages()["512-1024"]


def reuse_histogram(
    blocks: Sequence[int], workload: str = "trace"
) -> ReuseHistogram:
    """Figure 1a bucketing of exact stack distances."""
    distances = stack_distances(blocks)
    reused = distances[distances >= 0]
    cold = int((distances < 0).sum())
    counts = {
        "0": int((reused == 0).sum()),
        "1-16": int(((reused >= 1) & (reused <= 16)).sum()),
        "16-512": int(((reused > 16) & (reused <= 512)).sum()),
        "512-1024": int(((reused > 512) & (reused <= 1024)).sum()),
        "1024-10000": int(((reused > 1024) & (reused <= 10000)).sum()),
    }
    beyond = int((reused > 10000).sum())
    return ReuseHistogram(workload=workload, counts=counts, beyond=beyond, cold=cold)


def successive_distance_pairs(
    blocks: Sequence[int], edges: Sequence[int] = (1, 17, 513, 1025, 10001)
) -> np.ndarray:
    """Transition counts between successive reuse-distance buckets.

    Figure 1b's Markov chain: states are the Figure 1a buckets; the
    matrix entry [a][b] counts how often a block's reuse distance fell
    in bucket ``a`` and its *next* reuse distance fell in bucket ``b``.
    Returns the (len(edges)+1) x (len(edges)+1) count matrix, where the
    last state aggregates everything >= the final edge.
    """
    distances = stack_distances(blocks)
    blocks_arr = np.asarray(blocks, dtype=np.int64)
    n_states = len(edges) + 1
    matrix = np.zeros((n_states, n_states), dtype=np.int64)
    edges_arr = np.asarray(edges, dtype=np.int64)

    def bucket(d: int) -> int:
        return int(np.searchsorted(edges_arr, d, side="right"))

    previous_bucket: Dict[int, int] = {}
    for i in range(len(blocks_arr)):
        d = int(distances[i])
        if d < 0:
            continue
        b = bucket(d)
        block = int(blocks_arr[i])
        prev = previous_bucket.get(block)
        if prev is not None:
            matrix[prev][b] += 1
        previous_bucket[block] = b
    return matrix
