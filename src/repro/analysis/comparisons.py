"""Offline analyses of the i-Filter victim / contender comparison.

Three paper artifacts live here:

* **Figure 3b** — for every i-Filter victim inserted into the i-cache,
  the difference between the incoming block's next reuse distance and
  the OPT-selected outgoing block's; ~40 % of insertions are wrong.
* **Figure 6** — how many *other* comparisons start before a given
  comparison resolves, i.e. the CSHR capacity that comparison needs;
  justifies the 256-entry CSHR.
* The random-vs-ACIC accuracy framing of Figure 12 reuses the audit
  machinery in :mod:`repro.core.controller`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.common.bitops import partial_tag
from repro.core.ifilter import IFilter
from repro.mem.cache import CacheConfig, SetAssociativeCache
from repro.mem.oracle import NEVER, NextUseOracle
from repro.mem.policies.lru import LRUPolicy
from repro.workloads.trace import Trace

#: Figure 3b bucket edges for (incoming - outgoing) reuse distances.
FIG3B_EDGES = (-10000, -1000, -100, -10, 0, 10, 100, 1000, 10000)

#: Figure 6 bucket edges (number of concurrent comparisons).
FIG6_EDGES = (50, 100, 150, 200, 250, 300, 350, 400)


@dataclass
class DeltaHistogram:
    """Figure 3b: histogram of reuse-distance differences."""

    counts: List[int]           # len(FIG3B_EDGES) + 1 buckets, -inf..+inf
    wrong_insertions: int       # delta > 0: incoming reused later
    total: int

    @property
    def wrong_percent(self) -> float:
        """Paper (media streaming): 38.38 % of insertions are wrong."""
        return 100.0 * self.wrong_insertions / self.total if self.total else 0.0


def ifilter_insertion_deltas(
    trace: Trace,
    oracle: NextUseOracle,
    icache_config: CacheConfig | None = None,
    ifilter_slots: int = 16,
) -> DeltaHistogram:
    """Replay the always-insert i-Filter design and measure Figure 3b.

    For every i-Filter victim pushed into the i-cache, the *outgoing*
    block is chosen by OPT within the set (the best possible victim);
    the delta is (incoming next-use gap) − (outgoing next-use gap).
    """
    config = icache_config or CacheConfig(32 * 1024, 8, name="L1i")
    icache = SetAssociativeCache(config, LRUPolicy())
    ifilter = IFilter(ifilter_slots)
    counts = [0] * (len(FIG3B_EDGES) + 1)
    wrong = 0
    total = 0

    blocks = trace.blocks
    for t in range(len(trace)):
        block = int(blocks[t])
        if ifilter.lookup(block) or icache.lookup(block, t):
            continue
        victim = ifilter.fill(block)
        if victim is None:
            continue
        resident = icache.set_contents(icache.set_index(victim))
        if len(resident) < config.ways:
            icache.fill(victim, t)
            continue
        # OPT-selected outgoing block: furthest next use in the set.
        outgoing = max(resident, key=lambda b: oracle.next_use_of(b, t))
        d_in = oracle.next_use_of(victim, t)
        d_out = oracle.next_use_of(outgoing, t)
        d_in_gap = (d_in - t) if d_in < NEVER else NEVER
        d_out_gap = (d_out - t) if d_out < NEVER else NEVER
        if d_in_gap >= NEVER and d_out_gap >= NEVER:
            delta = 0
        elif d_in_gap >= NEVER:
            delta = FIG3B_EDGES[-1] + 1
        elif d_out_gap >= NEVER:
            delta = FIG3B_EDGES[0] - 1
        else:
            delta = d_in_gap - d_out_gap
        bucket = 0
        while bucket < len(FIG3B_EDGES) and delta >= FIG3B_EDGES[bucket]:
            bucket += 1
        counts[bucket] += 1
        total += 1
        if delta > 0:
            wrong += 1
        # Perform the insertion (always-insert design under analysis).
        icache.evict_block(outgoing, t)
        icache.fill(victim, t)

    return DeltaHistogram(counts=counts, wrong_insertions=wrong, total=total)


@dataclass
class CSHRLifetimeDistribution:
    """Figure 6: comparisons outstanding when each comparison resolves."""

    counts: List[int]      # buckets by FIG6_EDGES, final = unresolved/huge
    unresolved: int
    total: int

    def percentages(self) -> List[float]:
        if self.total == 0:
            return [0.0] * len(self.counts)
        return [100.0 * c / self.total for c in self.counts]

    def resolved_within(self, capacity: int) -> float:
        """Percent of comparisons that an ``capacity``-entry FA CSHR resolves.

        Paper: ~70 % resolve within 256 entries.
        """
        resolved = 0
        for edge, count in zip(FIG6_EDGES, self.counts):
            if edge <= capacity:
                resolved += count
        return 100.0 * resolved / self.total if self.total else 0.0


def cshr_lifetime_distribution(
    trace: Trace,
    icache_config: CacheConfig | None = None,
    ifilter_slots: int = 16,
    tag_bits: int = 12,
) -> CSHRLifetimeDistribution:
    """Replay with an *unbounded* fully-associative CSHR (Figure 6).

    For each comparison we count how many newer comparisons start before
    it resolves: that is the FA-CSHR capacity it would have needed.
    """
    config = icache_config or CacheConfig(32 * 1024, 8, name="L1i")
    icache = SetAssociativeCache(config, LRUPolicy())
    ifilter = IFilter(ifilter_slots)
    # Open comparisons: tag -> insertion serial (victim and contender
    # indexed separately, regional partial tags as in hardware).
    open_by_victim: Dict[int, List[int]] = {}
    open_by_contender: Dict[int, List[List[int]]] = {}
    serial = 0
    lifetimes: List[int] = []
    open_entries: List[List[int]] = []  # [insert_serial, victim_tag, live]

    def resolve(entry: List[int]) -> None:
        entry[2] = 0
        lifetimes.append(serial - entry[0])

    blocks = trace.blocks
    last_block = -1
    for t in range(len(trace)):
        block = int(blocks[t])
        if block != last_block:
            last_block = block
            tag = partial_tag(block, tag_bits)
            victims = open_by_victim.pop(tag, None)
            if victims:
                for idx in victims:
                    if open_entries[idx][2]:
                        resolve(open_entries[idx])
            contenders = open_by_contender.pop(tag, None)
            if contenders:
                for entry in contenders:
                    if entry[2]:
                        resolve(entry)
        if ifilter.lookup(block) or icache.lookup(block, t):
            continue
        victim = ifilter.fill(block)
        if victim is None:
            continue
        contender = icache.lru_contender(victim)
        icache.fill(victim, t)
        if contender is None:
            continue
        v_tag = partial_tag(victim, tag_bits)
        c_tag = partial_tag(contender, tag_bits)
        entry = [serial, v_tag, 1]
        open_entries.append(entry)
        open_by_victim.setdefault(v_tag, []).append(len(open_entries) - 1)
        open_by_contender.setdefault(c_tag, []).append(entry)
        serial += 1

    unresolved = sum(1 for e in open_entries if e[2])
    counts = [0] * (len(FIG6_EDGES) + 1)
    for life in lifetimes:
        bucket = 0
        while bucket < len(FIG6_EDGES) and life > FIG6_EDGES[bucket]:
            bucket += 1
        counts[bucket] += 1
    counts[-1] += unresolved
    return CSHRLifetimeDistribution(
        counts=counts, unresolved=unresolved, total=serial
    )
