"""Analytic chip-energy model (Section III-D's 0.63 % saving).

The paper runs McPAT + CACTI 7 at 22 nm.  We reproduce the *structure*
of that estimate with an analytic model:

* per-access energy of an SRAM structure follows a sub-linear power
  law in its capacity (CACTI's bitline/decoder scaling);
* leakage power is proportional to capacity;
* core dynamic energy is charged per instruction, and total leakage is
  charged over the execution time, so a scheme that runs faster saves
  leakage and a scheme that misses less saves L2/L3 access energy —
  exactly the trade-off that lets ACIC come out ahead despite adding
  structures.

Absolute joules are meaningless here; only *relative* chip energy
between schemes is reported, matching how the paper uses the model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.analysis.storage import ACICStorageConfig, acic_storage_bits
from repro.uarch.timing import RunResult


@dataclass(frozen=True)
class EnergyParams:
    """Technology constants (arbitrary but internally consistent units)."""

    sram_access_coeff_pj: float = 0.006
    sram_access_exponent: float = 0.75
    sram_leak_w_per_kb: float = 0.002
    core_dynamic_pj_per_instr: float = 150.0
    core_leak_w: float = 1.2
    l2_access_pj: float = 60.0
    l3_access_pj: float = 180.0
    cycle_seconds: float = 0.25e-9  # 4 GHz
    #: Fraction of fetches that probe the CSHR/predictor (only block
    #: transitions do; same-block fetch groups skip the search).
    acic_probe_fraction: float = 0.25


def sram_access_energy(size_bytes: float, params: EnergyParams) -> float:
    """CACTI-like per-access energy (pJ) for an SRAM of ``size_bytes``.

    A sub-linear power law: CACTI's bitline/decoder scaling makes a
    32 KB cache ~13x costlier per access than a 1 KB buffer, which the
    0.75 exponent reproduces (a square-root law undersells the gap and
    overtaxes ACIC's small structures).
    """
    if size_bytes <= 0:
        return 0.0
    return params.sram_access_coeff_pj * size_bytes**params.sram_access_exponent


@dataclass
class EnergyBreakdown:
    """Joule-scale components of one run's chip energy."""

    core_dynamic: float
    l1i_dynamic: float
    extra_dynamic: float
    next_level_dynamic: float
    leakage: float

    @property
    def total(self) -> float:
        return (
            self.core_dynamic
            + self.l1i_dynamic
            + self.extra_dynamic
            + self.next_level_dynamic
            + self.leakage
        )


def run_energy(
    run: RunResult,
    extra_structures_bits: Dict[str, int] | None = None,
    l1i_bytes: int = 32 * 1024,
    params: EnergyParams | None = None,
) -> EnergyBreakdown:
    """Estimate chip energy for one run.

    ``extra_structures_bits`` maps structure name -> bits for any state
    the scheme adds beyond the baseline L1i (use
    :func:`repro.analysis.storage.acic_storage_bits` for ACIC).
    """
    params = params or EnergyParams()
    extra_structures_bits = extra_structures_bits or {}

    seconds = run.cycles * params.cycle_seconds
    pj = 1e-12

    core_dynamic = run.instructions * params.core_dynamic_pj_per_instr * pj
    l1i_dynamic = run.accesses * sram_access_energy(l1i_bytes, params) * pj

    extra_bytes = sum(extra_structures_bits.values()) / 8
    # Per-structure probe energy: the i-Filter is probed every fetch in
    # parallel with the L1i; the CSHR/HRT/PT path runs only on block
    # transitions (~acic_probe_fraction of fetches).
    extra_dynamic = 0.0
    for name, bits in extra_structures_bits.items():
        rate = 1.0 if "Filter" in name else params.acic_probe_fraction
        extra_dynamic += (
            run.accesses * rate * sram_access_energy(bits / 8, params) * pj
        )

    next_level = run.demand_misses + run.prefetches_issued
    next_level_dynamic = next_level * params.l2_access_pj * pj

    leak_w = (
        params.core_leak_w
        + (l1i_bytes / 1024 + extra_bytes / 1024) * params.sram_leak_w_per_kb
    )
    leakage = leak_w * seconds

    return EnergyBreakdown(
        core_dynamic=core_dynamic,
        l1i_dynamic=l1i_dynamic,
        extra_dynamic=extra_dynamic,
        next_level_dynamic=next_level_dynamic,
        leakage=leakage,
    )


def acic_energy_saving_percent(
    acic_run: RunResult,
    baseline_run: RunResult,
    config: ACICStorageConfig | None = None,
) -> float:
    """Chip-energy saving of ACIC over the baseline (positive = saves).

    The paper reports 0.63 % average chip-energy saving despite ACIC's
    extra structures, because the speedup cuts leakage-time and the miss
    reduction cuts L2 traffic.
    """
    acic = run_energy(acic_run, acic_storage_bits(config))
    base = run_energy(baseline_run)
    if base.total == 0:
        raise ValueError("baseline run has zero energy; empty trace?")
    return 100.0 * (base.total - acic.total) / base.total
